//! Physical machines.
//!
//! A [`PmSpec`] is the paper's `R_j = {C_j, B_j, D_j}`: a set of physical
//! cores (homogeneous capacity `A_j`), memory `B_j` and a set of physical
//! disks. A [`Pm`] is a live machine tracking per-core and per-disk
//! reservations plus the set of resident VMs and their [`Assignment`]s.

use crate::assignment::Assignment;
use crate::cluster::VmId;
use crate::combin;
use crate::error::ModelError;
use crate::units::{convert, DiskGb, MemMib, Mhz};
use crate::vm::VmSpec;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Capacity description of one PM type (the paper's `R_j`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PmSpec {
    /// Human-readable type name, e.g. `"M3"`.
    pub name: String,
    /// Number of physical cores, `|C_j|`. Cores are homogeneous.
    pub cores: u32,
    /// Capacity of each core (`A_j^l`).
    pub core_mhz: Mhz,
    /// Total memory `B_j`.
    pub memory: MemMib,
    /// Capacity of each physical disk (`G_j^l`), one entry per disk. Stored
    /// sorted descending.
    disks: Vec<DiskGb>,
}

impl PmSpec {
    /// Create a PM spec. Disks are canonicalised (sorted descending).
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0`.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        cores: u32,
        core_mhz: Mhz,
        memory: MemMib,
        mut disks: Vec<DiskGb>,
    ) -> Self {
        assert!(cores > 0, "a PM must have at least one core");
        disks.sort_unstable_by(|a, b| b.cmp(a));
        Self {
            name: name.into(),
            cores,
            core_mhz,
            memory,
            disks,
        }
    }

    /// Per-disk capacities, sorted descending.
    #[must_use]
    pub fn disks(&self) -> &[DiskGb] {
        &self.disks
    }

    /// Aggregate CPU capacity over all cores.
    #[must_use]
    pub fn total_cpu(&self) -> Mhz {
        Mhz(self.core_mhz.get() * u64::from(self.cores))
    }

    /// Aggregate disk capacity over all disks.
    #[must_use]
    pub fn total_disk(&self) -> DiskGb {
        self.disks.iter().copied().sum()
    }
}

impl fmt::Display for PmSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} cores x {}, {}, {} disks)",
            self.name,
            self.cores,
            self.core_mhz,
            self.memory,
            self.disks.len()
        )
    }
}

/// A live physical machine with per-dimension reservations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pm {
    spec: PmSpec,
    /// Reserved MHz per physical core (index = core id).
    core_used: Vec<Mhz>,
    /// Reserved memory.
    mem_used: MemMib,
    /// Reserved GB per physical disk (index = disk id).
    disk_used: Vec<DiskGb>,
    /// Resident VMs and where their demands landed.
    vms: BTreeMap<VmId, (VmSpec, Assignment)>,
}

impl Pm {
    /// A fresh, empty machine of the given type.
    #[must_use]
    pub fn new(spec: PmSpec) -> Self {
        let cores = convert::u32_to_usize(spec.cores);
        let disks = spec.disks.len();
        Self {
            spec,
            core_used: vec![Mhz::ZERO; cores],
            mem_used: MemMib::ZERO,
            disk_used: vec![DiskGb::ZERO; disks],
            vms: BTreeMap::new(),
        }
    }

    /// The machine's capacity description.
    #[must_use]
    pub fn spec(&self) -> &PmSpec {
        &self.spec
    }

    /// Reserved MHz per core.
    #[must_use]
    pub fn core_used(&self) -> &[Mhz] {
        &self.core_used
    }

    /// Reserved memory.
    #[must_use]
    pub fn mem_used(&self) -> MemMib {
        self.mem_used
    }

    /// Reserved GB per disk.
    #[must_use]
    pub fn disk_used(&self) -> &[DiskGb] {
        &self.disk_used
    }

    /// Resident VMs with their specs and assignments, in `VmId` order.
    pub fn vms(&self) -> impl Iterator<Item = (VmId, &VmSpec, &Assignment)> {
        self.vms.iter().map(|(id, (spec, a))| (*id, spec, a))
    }

    /// Number of resident VMs.
    #[must_use]
    pub fn vm_count(&self) -> usize {
        self.vms.len()
    }

    /// `true` if no VM is resident (the PM could be powered off).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.vms.is_empty()
    }

    /// Look up a resident VM.
    #[must_use]
    pub fn vm(&self, id: VmId) -> Option<(&VmSpec, &Assignment)> {
        self.vms.get(&id).map(|(s, a)| (s, a))
    }

    /// Total reserved CPU across cores.
    #[must_use]
    pub fn total_cpu_used(&self) -> Mhz {
        self.core_used.iter().copied().sum()
    }

    /// Total reserved disk across disks.
    #[must_use]
    pub fn total_disk_used(&self) -> DiskGb {
        self.disk_used.iter().copied().sum()
    }

    /// Reserved CPU as a fraction of total CPU capacity.
    #[must_use]
    pub fn cpu_utilization(&self) -> f64 {
        self.total_cpu_used().fraction_of(self.spec.total_cpu())
    }

    /// Reserved memory as a fraction of capacity.
    #[must_use]
    pub fn mem_utilization(&self) -> f64 {
        self.mem_used.fraction_of(self.spec.memory)
    }

    /// Reserved disk as a fraction of total disk capacity.
    #[must_use]
    pub fn disk_utilization(&self) -> f64 {
        self.total_disk_used().fraction_of(self.spec.total_disk())
    }

    /// Per-dimension utilization vector: one entry per core, one for memory
    /// (if the PM has memory), one per disk. This is the PM "profile" of the
    /// paper's motivation section, in real units.
    #[must_use]
    pub fn utilization_profile(&self) -> Vec<f64> {
        let mut v: Vec<f64> = self
            .core_used
            .iter()
            .map(|&u| u.fraction_of(self.spec.core_mhz))
            .collect();
        if self.spec.memory > MemMib::ZERO {
            v.push(self.mem_used.fraction_of(self.spec.memory));
        }
        v.extend(
            self.disk_used
                .iter()
                .zip(self.spec.disks.iter())
                .map(|(&u, &c)| u.fraction_of(c)),
        );
        v
    }

    /// Quick aggregate check: does the PM have enough *total* free resource
    /// in every dimension class? Necessary but not sufficient for
    /// [`Self::first_feasible`]; used to prune candidates cheaply.
    #[must_use]
    pub fn has_aggregate_room(&self, vm: &VmSpec) -> bool {
        self.total_cpu_used() + vm.total_cpu() <= self.spec.total_cpu()
            && self.mem_used + vm.memory <= self.spec.memory
            && self.total_disk_used() + vm.total_disk() <= self.spec.total_disk()
            && vm.vcpus <= self.spec.cores
            && vm.disks().len() <= self.spec.disks.len()
    }

    /// Find any feasible anti-collocated assignment for `vm`, or `None`.
    #[must_use]
    pub fn first_feasible(&self, vm: &VmSpec) -> Option<Assignment> {
        if self.mem_used + vm.memory > self.spec.memory {
            return None;
        }
        let core_used: Vec<u64> = self.core_used.iter().map(|m| m.get()).collect();
        let core_caps = vec![self.spec.core_mhz.get(); core_used.len()];
        let cpu_demands = vec![vm.vcpu_mhz.get(); convert::u32_to_usize(vm.vcpus)];
        let cores = combin::first_feasible(&core_used, &core_caps, &cpu_demands)?;

        let disk_used: Vec<u64> = self.disk_used.iter().map(|d| d.get()).collect();
        let disk_caps: Vec<u64> = self.spec.disks.iter().map(|d| d.get()).collect();
        let disk_demands: Vec<u64> = vm.disks().iter().map(|d| d.get()).collect();
        let disks = combin::first_feasible(&disk_used, &disk_caps, &disk_demands)?;
        Some(Assignment::new(cores, disks))
    }

    /// Enumerate one representative assignment per *distinct* resulting
    /// usage profile — every permutation of the VM's request that matters
    /// (Algorithm 2, line 6).
    #[must_use]
    pub fn distinct_feasible(&self, vm: &VmSpec) -> Vec<Assignment> {
        if self.mem_used + vm.memory > self.spec.memory {
            return Vec::new();
        }
        let core_used: Vec<u64> = self.core_used.iter().map(|m| m.get()).collect();
        let core_caps = vec![self.spec.core_mhz.get(); core_used.len()];
        let cpu_demands = vec![vm.vcpu_mhz.get(); convert::u32_to_usize(vm.vcpus)];
        let core_options = combin::distinct_placements(&core_used, &core_caps, &cpu_demands);
        if core_options.is_empty() {
            return Vec::new();
        }

        let disk_used: Vec<u64> = self.disk_used.iter().map(|d| d.get()).collect();
        let disk_caps: Vec<u64> = self.spec.disks.iter().map(|d| d.get()).collect();
        let disk_demands: Vec<u64> = vm.disks().iter().map(|d| d.get()).collect();
        let disk_options = combin::distinct_placements(&disk_used, &disk_caps, &disk_demands);
        if disk_options.is_empty() {
            return Vec::new();
        }

        let mut out = Vec::with_capacity(core_options.len() * disk_options.len());
        for cores in &core_options {
            for disks in &disk_options {
                out.push(Assignment::new(cores.clone(), disks.clone()));
            }
        }
        out
    }

    /// Validate `assignment` for `vm` against shape, anti-collocation and
    /// capacity.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidAssignment`] describing the violated
    /// rule.
    pub fn validate(&self, vm: &VmSpec, assignment: &Assignment) -> Result<(), ModelError> {
        let invalid = |reason: &str| ModelError::InvalidAssignment {
            reason: reason.to_string(),
        };
        if assignment.cores.len() != convert::u32_to_usize(vm.vcpus) {
            return Err(invalid("core list length != vCPU count"));
        }
        if assignment.disks.len() != vm.disks().len() {
            return Err(invalid("disk list length != virtual disk count"));
        }
        if !assignment.is_anti_collocated() {
            return Err(invalid("duplicate core or disk index (anti-collocation)"));
        }
        for &c in &assignment.cores {
            if c >= self.core_used.len() {
                return Err(invalid("core index out of range"));
            }
            if self.core_used[c] + vm.vcpu_mhz > self.spec.core_mhz {
                return Err(invalid("core capacity exceeded"));
            }
        }
        if self.mem_used + vm.memory > self.spec.memory {
            return Err(invalid("memory capacity exceeded"));
        }
        for (k, &d) in assignment.disks.iter().enumerate() {
            if d >= self.disk_used.len() {
                return Err(invalid("disk index out of range"));
            }
            if self.disk_used[d] + vm.disks()[k] > self.spec.disks[d] {
                return Err(invalid("disk capacity exceeded"));
            }
        }
        Ok(())
    }

    /// Reserve resources for `vm` under `assignment`.
    ///
    /// # Errors
    ///
    /// Fails if the assignment is invalid or the id is already resident;
    /// the PM is unchanged on error.
    pub fn place(
        &mut self,
        id: VmId,
        vm: VmSpec,
        assignment: Assignment,
    ) -> Result<(), ModelError> {
        self.validate(&vm, &assignment)?;
        if self.vms.contains_key(&id) {
            return Err(ModelError::InvalidAssignment {
                reason: format!("VM {} already resident", id.0),
            });
        }
        for &c in &assignment.cores {
            self.core_used[c] += vm.vcpu_mhz;
        }
        self.mem_used += vm.memory;
        for (k, &d) in assignment.disks.iter().enumerate() {
            self.disk_used[d] += vm.disks()[k];
        }
        self.vms.insert(id, (vm, assignment));
        Ok(())
    }

    /// Release the resources of a resident VM, returning its spec and
    /// assignment.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownVm`] if `id` is not resident.
    pub fn remove(&mut self, id: VmId) -> Result<(VmSpec, Assignment), ModelError> {
        let (vm, assignment) = self.vms.remove(&id).ok_or(ModelError::UnknownVm(id))?;
        for &c in &assignment.cores {
            self.core_used[c] -= vm.vcpu_mhz;
        }
        self.mem_used -= vm.memory;
        for (k, &d) in assignment.disks.iter().enumerate() {
            self.disk_used[d] -= vm.disks()[k];
        }
        Ok((vm, assignment))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    fn pm() -> Pm {
        Pm::new(catalog::pm_m3())
    }

    #[test]
    fn fresh_pm_is_empty() {
        let pm = pm();
        assert!(pm.is_empty());
        assert_eq!(pm.cpu_utilization(), 0.0);
        assert_eq!(pm.utilization_profile().len(), 8 + 1 + 4);
    }

    #[test]
    fn place_and_remove_round_trip() {
        let mut pm = pm();
        let vm = catalog::vm_m3_xlarge();
        let a = pm.first_feasible(&vm).expect("fits on empty M3");
        pm.place(VmId(1), vm.clone(), a.clone()).unwrap();
        assert_eq!(pm.vm_count(), 1);
        assert_eq!(pm.total_cpu_used(), vm.total_cpu());
        assert_eq!(pm.mem_used(), vm.memory);
        assert_eq!(pm.total_disk_used(), vm.total_disk());

        let (spec, got) = pm.remove(VmId(1)).unwrap();
        assert_eq!(spec, vm);
        assert_eq!(got, a);
        assert!(pm.is_empty());
        assert_eq!(pm.total_cpu_used(), Mhz::ZERO);
        assert_eq!(pm.total_disk_used(), DiskGb::ZERO);
    }

    #[test]
    fn anti_collocation_is_enforced() {
        let pm = pm();
        let vm = catalog::vm_m3_large(); // 2 vCPUs
        let bad = Assignment::new(vec![0, 0], vec![0]);
        assert!(matches!(
            pm.validate(&vm, &bad),
            Err(ModelError::InvalidAssignment { .. })
        ));
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let pm = pm();
        let vm = catalog::vm_m3_large();
        let bad = Assignment::new(vec![0], vec![0]); // needs 2 cores
        assert!(pm.validate(&vm, &bad).is_err());
        let bad = Assignment::new(vec![0, 1], vec![]); // needs 1 disk
        assert!(pm.validate(&vm, &bad).is_err());
    }

    #[test]
    fn core_capacity_is_per_core_not_aggregate() {
        // A core holds 2600 MHz; four 650-MHz vCPUs fill one core exactly.
        let spec = PmSpec::new("tiny", 1, Mhz(2600), MemMib(102400), vec![DiskGb(1000)]);
        let mut pm = Pm::new(spec);
        let vm = VmSpec::new("v", 1, Mhz(650), MemMib(1), vec![DiskGb(1)]);
        for i in 0..4 {
            let a = pm.first_feasible(&vm).expect("core has room");
            pm.place(VmId(i), vm.clone(), a).unwrap();
        }
        assert!(pm.first_feasible(&vm).is_none(), "core is full");
        assert!(!pm.has_aggregate_room(&vm));
    }

    #[test]
    fn remove_unknown_vm_errors() {
        let mut pm = pm();
        assert_eq!(pm.remove(VmId(9)), Err(ModelError::UnknownVm(VmId(9))));
    }

    #[test]
    fn double_place_same_id_errors() {
        let mut pm = pm();
        let vm = catalog::vm_m3_medium();
        let a = pm.first_feasible(&vm).unwrap();
        pm.place(VmId(1), vm.clone(), a.clone()).unwrap();
        let a2 = pm.first_feasible(&vm).unwrap();
        assert!(pm.place(VmId(1), vm, a2).is_err());
    }

    #[test]
    fn distinct_feasible_outcomes_are_all_valid() {
        let mut pm = pm();
        let seed = catalog::vm_m3_large();
        let a = pm.first_feasible(&seed).unwrap();
        pm.place(VmId(0), seed, a).unwrap();

        let vm = catalog::vm_c3_xlarge();
        let options = pm.distinct_feasible(&vm);
        assert!(!options.is_empty());
        for opt in &options {
            pm.validate(&vm, opt).expect("enumerated option is valid");
        }
    }

    #[test]
    fn memory_capacity_is_enforced() {
        // C3 has only 7.5 GiB memory: an m3.xlarge (15 GiB) can never fit.
        let pm = Pm::new(catalog::pm_c3());
        let vm = catalog::vm_m3_xlarge();
        assert!(pm.first_feasible(&vm).is_none());
        assert!(pm.distinct_feasible(&vm).is_empty());
        assert!(!pm.has_aggregate_room(&vm));
    }
}
