//! PM-level collocation and anti-collocation groups.
//!
//! The paper's §II cites deployments with "complex resource requirements…
//! with VM collocation and anti-collocation requirements" at the *machine*
//! level (which VMs may or must share a PM), on top of the per-core /
//! per-disk constraints the core algorithm handles. This module is the
//! machine-level layer: [`AffinityRules`] names groups of VM requests
//! that must land on the same PM (collocation) or on pairwise-distinct
//! PMs (anti-collocation), and [`place_batch_with_rules`] drives any
//! [`PlacementAlgorithm`] under those rules.

use crate::cluster::{Cluster, PmId, VmId};
use crate::error::PlaceError;
use crate::traits::PlacementAlgorithm;
use crate::vm::VmSpec;
use std::collections::HashMap;

/// Machine-level affinity rules over a batch of VM requests, identified
/// by their index in the batch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AffinityRules {
    /// Each inner set of request indices must share one PM.
    collocate: Vec<Vec<usize>>,
    /// Each inner set of request indices must use pairwise-distinct PMs.
    separate: Vec<Vec<usize>>,
}

impl AffinityRules {
    /// No rules.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Require the requests at `indices` to share a PM.
    ///
    /// # Panics
    ///
    /// Panics if `indices` has fewer than two entries (a trivial rule is
    /// almost certainly a bug).
    #[must_use]
    pub fn collocate(mut self, indices: Vec<usize>) -> Self {
        assert!(indices.len() >= 2, "collocation group needs >= 2 VMs");
        self.collocate.push(indices);
        self
    }

    /// Require the requests at `indices` to use pairwise-distinct PMs.
    ///
    /// # Panics
    ///
    /// Panics if `indices` has fewer than two entries.
    #[must_use]
    pub fn separate(mut self, indices: Vec<usize>) -> Self {
        assert!(indices.len() >= 2, "anti-collocation group needs >= 2 VMs");
        self.separate.push(indices);
        self
    }

    /// Collocation groups.
    #[must_use]
    pub fn collocation_groups(&self) -> &[Vec<usize>] {
        &self.collocate
    }

    /// Anti-collocation groups.
    #[must_use]
    pub fn separation_groups(&self) -> &[Vec<usize>] {
        &self.separate
    }

    /// Check the rules are internally consistent for a batch of `n`
    /// requests: indices in range, and no pair both collocated and
    /// separated.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self, n: usize) -> Result<(), String> {
        for g in self.collocate.iter().chain(&self.separate) {
            for &i in g {
                if i >= n {
                    return Err(format!("rule references request {i}, batch has {n}"));
                }
            }
        }
        // Union-find over collocation groups; then any separate pair in
        // the same component is contradictory.
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let r = find(parent, parent[x]);
                parent[x] = r;
            }
            parent[x]
        }
        for g in &self.collocate {
            for w in g.windows(2) {
                let (a, b) = (find(&mut parent, w[0]), find(&mut parent, w[1]));
                parent[a] = b;
            }
        }
        for g in &self.separate {
            for i in 0..g.len() {
                for j in (i + 1)..g.len() {
                    if find(&mut parent, g[i]) == find(&mut parent, g[j]) {
                        return Err(format!(
                            "requests {} and {} are both collocated and separated",
                            g[i], g[j]
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// `true` if placing request `idx` on `pm` keeps every rule
    /// satisfiable given the placements so far (`placed[i] = Some(pm)` for
    /// already-placed requests).
    #[must_use]
    pub fn allows(&self, idx: usize, pm: PmId, placed: &[Option<PmId>]) -> bool {
        for g in &self.collocate {
            if g.contains(&idx) {
                for &other in g {
                    if let Some(Some(p)) = placed.get(other) {
                        if *p != pm {
                            return false;
                        }
                    }
                }
            }
        }
        for g in &self.separate {
            if g.contains(&idx) {
                for &other in g {
                    if other != idx {
                        if let Some(Some(p)) = placed.get(other) {
                            if *p == pm {
                                return false;
                            }
                        }
                    }
                }
            }
        }
        true
    }
}

/// Place a batch under affinity rules: each request is placed by `algo`
/// restricted (via the exclusion hook) to PMs the rules allow.
///
/// Requests inside one collocation group are placed consecutively (group
/// members immediately after their first-placed member) so the shared PM
/// is fixed early; otherwise arrival order is kept — `order_batch` is
/// *not* applied, because reordering would break index-based rules.
///
/// # Errors
///
/// [`PlaceError::NoFeasiblePm`] when a request cannot be placed under the
/// rules. Earlier placements remain applied.
pub fn place_batch_with_rules(
    algo: &mut dyn PlacementAlgorithm,
    cluster: &mut Cluster,
    vms: &[VmSpec],
    rules: &AffinityRules,
) -> Result<Vec<VmId>, PlaceError> {
    rules
        .validate(vms.len())
        .map_err(|_| PlaceError::NoFeasiblePm)?;

    // Order: walk arrival order, but pull a request's collocation-group
    // mates right behind it.
    let mut order: Vec<usize> = Vec::with_capacity(vms.len());
    let mut queued = vec![false; vms.len()];
    for i in 0..vms.len() {
        if queued[i] {
            continue;
        }
        order.push(i);
        queued[i] = true;
        for g in &rules.collocate {
            if g.contains(&i) {
                for &j in g {
                    if !queued[j] {
                        order.push(j);
                        queued[j] = true;
                    }
                }
            }
        }
    }

    let mut placed: Vec<Option<PmId>> = vec![None; vms.len()];
    let mut ids: HashMap<usize, VmId> = HashMap::new();
    for idx in order {
        let vm = &vms[idx];
        let decision = algo
            .choose(cluster, vm, &|pm| !rules.allows(idx, pm, &placed))
            .ok_or(PlaceError::NoFeasiblePm)?;
        let id = cluster
            .place(decision.pm, vm.clone(), decision.assignment)
            .map_err(|_| PlaceError::InfeasibleAssignment { pm: decision.pm })?;
        placed[idx] = Some(decision.pm);
        ids.insert(idx, id);
    }
    Ok((0..vms.len()).map(|i| ids[&i]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use crate::traits::PlacementDecision;

    struct ToyFirstFit;
    impl PlacementAlgorithm for ToyFirstFit {
        fn name(&self) -> &str {
            "toy-ff"
        }
        fn choose(
            &mut self,
            cluster: &Cluster,
            vm: &VmSpec,
            exclude: &dyn Fn(PmId) -> bool,
        ) -> Option<PlacementDecision> {
            cluster
                .used_pms()
                .chain(cluster.unused_pms())
                .filter(|&pm| !exclude(pm))
                .find_map(|pm| {
                    cluster
                        .pm(pm)
                        .first_feasible(vm)
                        .map(|assignment| PlacementDecision { pm, assignment })
                })
        }
    }

    #[test]
    fn collocation_forces_shared_pm() {
        let mut cluster = Cluster::homogeneous(catalog::pm_m3(), 4);
        let vms = vec![catalog::vm_m3_medium(); 4];
        let rules = AffinityRules::new().collocate(vec![1, 3]);
        let ids = place_batch_with_rules(&mut ToyFirstFit, &mut cluster, &vms, &rules).unwrap();
        assert_eq!(cluster.locate(ids[1]), cluster.locate(ids[3]));
    }

    #[test]
    fn separation_forces_distinct_pms() {
        let mut cluster = Cluster::homogeneous(catalog::pm_m3(), 4);
        let vms = vec![catalog::vm_m3_medium(); 3];
        let rules = AffinityRules::new().separate(vec![0, 1, 2]);
        let ids = place_batch_with_rules(&mut ToyFirstFit, &mut cluster, &vms, &rules).unwrap();
        let pms: std::collections::HashSet<_> =
            ids.iter().map(|&id| cluster.locate(id).unwrap()).collect();
        assert_eq!(pms.len(), 3, "three VMs on three distinct PMs");
    }

    #[test]
    fn contradictory_rules_are_rejected() {
        let rules = AffinityRules::new()
            .collocate(vec![0, 1])
            .separate(vec![0, 1]);
        assert!(rules.validate(2).is_err());
        let mut cluster = Cluster::homogeneous(catalog::pm_m3(), 2);
        let vms = vec![catalog::vm_m3_medium(); 2];
        assert_eq!(
            place_batch_with_rules(&mut ToyFirstFit, &mut cluster, &vms, &rules),
            Err(PlaceError::NoFeasiblePm)
        );
    }

    #[test]
    fn out_of_range_rule_is_invalid() {
        let rules = AffinityRules::new().collocate(vec![0, 9]);
        assert!(rules.validate(2).is_err());
    }

    #[test]
    fn transitive_collocation_via_union_find() {
        // {0,1} and {1,2} collocated; separating {0,2} is contradictory.
        let rules = AffinityRules::new()
            .collocate(vec![0, 1])
            .collocate(vec![1, 2])
            .separate(vec![0, 2]);
        assert!(rules.validate(3).is_err());
    }

    #[test]
    fn infeasible_separation_fails_gracefully() {
        // Two PMs but three VMs that must be pairwise separate.
        let mut cluster = Cluster::homogeneous(catalog::pm_m3(), 2);
        let vms = vec![catalog::vm_m3_medium(); 3];
        let rules = AffinityRules::new().separate(vec![0, 1, 2]);
        let err = place_batch_with_rules(&mut ToyFirstFit, &mut cluster, &vms, &rules);
        assert_eq!(err, Err(PlaceError::NoFeasiblePm));
        assert_eq!(cluster.vm_count(), 2, "earlier placements remain");
    }

    #[test]
    fn collocation_capacity_limits_are_respected() {
        // Two m3.2xlarge fit one M3 (memory 60/64); a third collocated
        // with them cannot.
        let mut cluster = Cluster::homogeneous(catalog::pm_m3(), 3);
        let vms = vec![catalog::vm_m3_2xlarge(); 3];
        let rules = AffinityRules::new().collocate(vec![0, 1, 2]);
        let err = place_batch_with_rules(&mut ToyFirstFit, &mut cluster, &vms, &rules);
        assert_eq!(err, Err(PlaceError::NoFeasiblePm));
    }

    #[test]
    fn no_rules_matches_plain_batch_placement() {
        let vms = vec![catalog::vm_m3_medium(); 5];
        let mut a = Cluster::homogeneous(catalog::pm_m3(), 3);
        place_batch_with_rules(&mut ToyFirstFit, &mut a, &vms, &AffinityRules::new()).unwrap();
        let mut b = Cluster::homogeneous(catalog::pm_m3(), 3);
        crate::traits::place_batch(&mut ToyFirstFit, &mut b, vms).unwrap();
        assert_eq!(a.active_pm_count(), b.active_pm_count());
    }
}
