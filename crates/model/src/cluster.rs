//! Cluster state: the datacenter's PMs plus the paper's
//! `used_PM_list` / `unused_PM_list` bookkeeping (Algorithm 2).

use crate::assignment::Assignment;
use crate::error::ModelError;
use crate::pm::{Pm, PmSpec};
use crate::units::Mhz;
use crate::vm::VmSpec;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

/// Identity of a PM within a [`Cluster`] (its index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PmId(pub usize);

/// Identity of a VM within a [`Cluster`]. Stable across migrations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VmId(pub u64);

/// A datacenter: a fixed set of PMs, a used list (PMs hosting at least one
/// VM, in first-use order) and an unused list.
///
/// # Example
///
/// ```
/// use prvm_model::{catalog, Assignment, Cluster};
///
/// let mut cluster = Cluster::homogeneous(catalog::pm_m3(), 3);
/// assert_eq!(cluster.len(), 3);
/// assert_eq!(cluster.active_pm_count(), 0);
///
/// // m3.large: 2 vCPUs on distinct cores, one disk (Table I).
/// let pm = cluster.unused_pms().next().expect("all PMs start unused");
/// let vm = cluster
///     .place(pm, catalog::vm_m3_large(), Assignment::new(vec![0, 1], vec![0]))
///     .expect("an empty m3 PM hosts an m3.large");
/// assert_eq!(cluster.active_pm_count(), 1);
/// assert_eq!(cluster.locate(vm), Some(pm));
///
/// // Removing the VM returns the PM to the unused list, but it still
/// // counts toward the paper's "PMs ever used" metric.
/// cluster.remove(vm).expect("vm is resident");
/// assert_eq!(cluster.active_pm_count(), 0);
/// assert_eq!(cluster.ever_used_count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Cluster {
    pms: Vec<Pm>,
    used: Vec<PmId>,
    unused: VecDeque<PmId>,
    location: HashMap<VmId, PmId>,
    next_vm: u64,
    /// Every PM that hosted at least one VM at any point (for the paper's
    /// "number of PMs used" metric).
    ever_used: Vec<bool>,
    /// Crashed PMs: hidden from the used/unused iterators and rejected as
    /// placement targets until marked up again. All-false unless a fault
    /// plan is active.
    down: Vec<bool>,
}

impl Cluster {
    /// A cluster of `n` identical machines.
    #[must_use]
    pub fn homogeneous(spec: PmSpec, n: usize) -> Self {
        Self::from_specs(std::iter::repeat_n(spec, n))
    }

    /// A cluster from an explicit sequence of PM types (heterogeneous).
    #[must_use]
    pub fn from_specs(specs: impl IntoIterator<Item = PmSpec>) -> Self {
        let pms: Vec<Pm> = specs.into_iter().map(Pm::new).collect();
        let unused = (0..pms.len()).map(PmId).collect();
        let ever_used = vec![false; pms.len()];
        let down = vec![false; pms.len()];
        Self {
            pms,
            used: Vec::new(),
            unused,
            location: HashMap::new(),
            next_vm: 0,
            ever_used,
            down,
        }
    }

    /// Number of PMs in the datacenter.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pms.len()
    }

    /// `true` if the datacenter has no PMs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pms.is_empty()
    }

    /// Number of resident VMs.
    #[must_use]
    pub fn vm_count(&self) -> usize {
        self.location.len()
    }

    /// Access a PM.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn pm(&self, id: PmId) -> &Pm {
        &self.pms[id.0]
    }

    /// All PMs in id order.
    #[must_use]
    pub fn pms(&self) -> &[Pm] {
        &self.pms
    }

    /// The used-PM list in first-use order (the paper's `used_PM_list`).
    /// Down PMs are hidden, so every placement algorithm — they all walk
    /// this and [`Cluster::unused_pms`] — skips crashed machines for free.
    pub fn used_pms(&self) -> impl Iterator<Item = PmId> + '_ {
        self.used.iter().copied().filter(|pm| !self.down[pm.0])
    }

    /// The unused-PM list (the paper's `unused_PM_list`), down PMs hidden.
    pub fn unused_pms(&self) -> impl Iterator<Item = PmId> + '_ {
        self.unused.iter().copied().filter(|pm| !self.down[pm.0])
    }

    /// Number of PMs currently hosting at least one VM.
    #[must_use]
    pub fn active_pm_count(&self) -> usize {
        self.used.len()
    }

    /// Number of PMs that hosted at least one VM at any point in this
    /// cluster's history — the paper's "number of PMs used" metric.
    #[must_use]
    pub fn ever_used_count(&self) -> usize {
        self.ever_used.iter().filter(|&&b| b).count()
    }

    /// Mark a PM as crashed. Resident VMs stay resident — evacuating them
    /// is the caller's (sim engine / controller) responsibility, so the
    /// recovery policy lives with the recovery accounting.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownPm`] for an out-of-range id.
    pub fn mark_down(&mut self, pm: PmId) -> Result<(), ModelError> {
        if pm.0 >= self.pms.len() {
            return Err(ModelError::UnknownPm(pm));
        }
        self.down[pm.0] = true;
        Ok(())
    }

    /// Mark a crashed PM as recovered; it reappears in the used/unused
    /// iterators and can host VMs again.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownPm`] for an out-of-range id.
    pub fn mark_up(&mut self, pm: PmId) -> Result<(), ModelError> {
        if pm.0 >= self.pms.len() {
            return Err(ModelError::UnknownPm(pm));
        }
        self.down[pm.0] = false;
        Ok(())
    }

    /// True when the PM is marked down (false for out-of-range ids).
    #[must_use]
    pub fn is_down(&self, pm: PmId) -> bool {
        self.down.get(pm.0).copied().unwrap_or(false)
    }

    /// Number of PMs currently marked down.
    #[must_use]
    pub fn down_pm_count(&self) -> usize {
        self.down.iter().filter(|&&d| d).count()
    }

    /// VM ids resident on one PM, in ascending id order (deterministic,
    /// for evacuation processing).
    #[must_use]
    pub fn resident_vms(&self, pm: PmId) -> Vec<VmId> {
        let mut vms: Vec<VmId> = self
            .location
            .iter()
            .filter(|(_, p)| **p == pm)
            .map(|(vm, _)| *vm)
            .collect();
        vms.sort_unstable();
        vms
    }

    /// Where a VM currently lives.
    #[must_use]
    pub fn locate(&self, vm: VmId) -> Option<PmId> {
        self.location.get(&vm).copied()
    }

    /// All resident VM ids (unordered).
    pub fn vm_ids(&self) -> impl Iterator<Item = VmId> + '_ {
        self.location.keys().copied()
    }

    /// Place a new VM on `pm` under `assignment`, allocating a fresh
    /// [`VmId`].
    ///
    /// # Errors
    ///
    /// Propagates validation failures; the cluster is unchanged on error.
    pub fn place(
        &mut self,
        pm: PmId,
        vm: VmSpec,
        assignment: Assignment,
    ) -> Result<VmId, ModelError> {
        let id = VmId(self.next_vm);
        self.place_as(id, pm, vm, assignment)?;
        self.next_vm += 1;
        Ok(id)
    }

    /// Place a VM with a caller-chosen id (used to keep ids stable across
    /// migrations).
    ///
    /// # Errors
    ///
    /// Fails if the id is already resident somewhere or the assignment is
    /// invalid.
    pub fn place_as(
        &mut self,
        id: VmId,
        pm: PmId,
        vm: VmSpec,
        assignment: Assignment,
    ) -> Result<(), ModelError> {
        if pm.0 >= self.pms.len() {
            return Err(ModelError::UnknownPm(pm));
        }
        if self.down[pm.0] {
            return Err(ModelError::PmDown(pm));
        }
        if self.location.contains_key(&id) {
            return Err(ModelError::InvalidAssignment {
                reason: format!("VM {} already placed", id.0),
            });
        }
        let was_empty = self.pms[pm.0].is_empty();
        self.pms[pm.0].place(id, vm, assignment)?;
        self.location.insert(id, pm);
        self.next_vm = self.next_vm.max(id.0 + 1);
        self.ever_used[pm.0] = true;
        if was_empty {
            self.unused.retain(|&p| p != pm);
            self.used.push(pm);
        }
        Ok(())
    }

    /// Remove a VM, returning where it was and what it was.
    ///
    /// If the PM becomes empty it moves back to the unused list (it can be
    /// powered off).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownVm`] for an unknown id.
    pub fn remove(&mut self, id: VmId) -> Result<(PmId, VmSpec, Assignment), ModelError> {
        let pm = self.location.remove(&id).ok_or(ModelError::UnknownVm(id))?;
        let Ok((spec, assignment)) = self.pms[pm.0].remove(id) else {
            // The location map said `pm` hosts `id` but the PM disagrees —
            // a bookkeeping bug. Surface it as loudly as the build allows.
            debug_assert!(false, "location map and PM state disagree for VM {}", id.0);
            return Err(ModelError::UnknownVm(id));
        };
        if self.pms[pm.0].is_empty() {
            self.used.retain(|&p| p != pm);
            self.unused.push_back(pm);
        }
        Ok((pm, spec, assignment))
    }

    /// Move a VM to another PM under a new assignment (a migration).
    ///
    /// # Errors
    ///
    /// If the destination rejects the assignment the VM is restored on its
    /// source PM and the error returned.
    pub fn migrate(
        &mut self,
        id: VmId,
        to: PmId,
        assignment: Assignment,
    ) -> Result<(), ModelError> {
        let (from, spec, old) = self.remove(id)?;
        match self.place_as(id, to, spec.clone(), assignment) {
            Ok(()) => Ok(()),
            Err(e) => {
                let restored = self.place_as(id, from, spec, old);
                debug_assert!(restored.is_ok(), "restoring a just-removed VM cannot fail");
                Err(e)
            }
        }
    }

    /// The id the next [`Cluster::place`] will allocate.
    #[must_use]
    pub fn next_vm_id(&self) -> u64 {
        self.next_vm
    }

    /// Bump the fresh-id allocator to at least `next`. Recovery uses
    /// this: a snapshot records the allocator watermark so that replay
    /// never re-issues the id of a VM that was placed and later evicted
    /// before the snapshot was cut.
    pub fn reserve_vm_ids(&mut self, next: u64) {
        self.next_vm = self.next_vm.max(next);
    }

    /// Aggregate reserved-CPU utilization across *active* PMs
    /// (0.0 if none are active).
    #[must_use]
    pub fn active_cpu_utilization(&self) -> f64 {
        let (used, cap) = self
            .used
            .iter()
            .fold((Mhz::ZERO, Mhz::ZERO), |(u, c), &pm| {
                let pm = &self.pms[pm.0];
                (u + pm.total_cpu_used(), c + pm.spec().total_cpu())
            });
        used.fraction_of(cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn fresh_cluster_has_all_pms_unused() {
        let c = Cluster::homogeneous(catalog::pm_m3(), 3);
        assert_eq!(c.len(), 3);
        assert_eq!(c.active_pm_count(), 0);
        assert_eq!(c.unused_pms().count(), 3);
        assert_eq!(c.ever_used_count(), 0);
    }

    #[test]
    fn used_list_tracks_occupancy() {
        let mut c = Cluster::homogeneous(catalog::pm_m3(), 2);
        let vm = catalog::vm_m3_medium();
        let a = c.pm(PmId(1)).first_feasible(&vm).unwrap();
        let id = c.place(PmId(1), vm, a).unwrap();
        assert_eq!(c.used_pms().collect::<Vec<_>>(), vec![PmId(1)]);
        assert_eq!(c.unused_pms().collect::<Vec<_>>(), vec![PmId(0)]);
        assert_eq!(c.locate(id), Some(PmId(1)));

        c.remove(id).unwrap();
        assert_eq!(c.active_pm_count(), 0);
        assert_eq!(c.unused_pms().count(), 2);
        // "ever used" survives the removal.
        assert_eq!(c.ever_used_count(), 1);
    }

    #[test]
    fn vm_ids_are_unique_and_stable() {
        let mut c = Cluster::homogeneous(catalog::pm_m3(), 1);
        let vm = catalog::vm_m3_medium();
        let a1 = c.pm(PmId(0)).first_feasible(&vm).unwrap();
        let id1 = c.place(PmId(0), vm.clone(), a1).unwrap();
        let a2 = c.pm(PmId(0)).first_feasible(&vm).unwrap();
        let id2 = c.place(PmId(0), vm, a2).unwrap();
        assert_ne!(id1, id2);
    }

    #[test]
    fn migrate_moves_and_rolls_back() {
        let mut c = Cluster::homogeneous(catalog::pm_m3(), 2);
        let vm = catalog::vm_m3_large();
        let a = c.pm(PmId(0)).first_feasible(&vm).unwrap();
        let id = c.place(PmId(0), vm.clone(), a).unwrap();

        let dest = c.pm(PmId(1)).first_feasible(&vm).unwrap();
        c.migrate(id, PmId(1), dest).unwrap();
        assert_eq!(c.locate(id), Some(PmId(1)));
        assert!(c.pm(PmId(0)).is_empty());

        // A bad destination assignment rolls back.
        let bad = Assignment::new(vec![0, 0], vec![0]);
        let err = c.migrate(id, PmId(0), bad);
        assert!(err.is_err());
        assert_eq!(c.locate(id), Some(PmId(1)), "rolled back to source");
        assert_eq!(c.vm_count(), 1);
    }

    #[test]
    fn place_on_unknown_pm_errors() {
        let mut c = Cluster::homogeneous(catalog::pm_m3(), 1);
        let vm = catalog::vm_m3_medium();
        let err = c.place(PmId(5), vm, Assignment::default());
        assert_eq!(err, Err(ModelError::UnknownPm(PmId(5))));
    }

    #[test]
    fn down_pms_are_hidden_and_reject_placements() {
        let mut c = Cluster::homogeneous(catalog::pm_m3(), 3);
        let vm = catalog::vm_m3_medium();
        let a = c.pm(PmId(1)).first_feasible(&vm).unwrap();
        let id = c.place(PmId(1), vm.clone(), a).unwrap();

        c.mark_down(PmId(1)).unwrap();
        c.mark_down(PmId(2)).unwrap();
        assert!(c.is_down(PmId(1)));
        assert_eq!(c.down_pm_count(), 2);
        assert_eq!(c.used_pms().count(), 0, "down PM hidden from used list");
        assert_eq!(c.unused_pms().collect::<Vec<_>>(), vec![PmId(0)]);
        // The VM is still resident (evacuation is the caller's job).
        assert_eq!(c.locate(id), Some(PmId(1)));
        assert_eq!(c.resident_vms(PmId(1)), vec![id]);

        // Placing on a down PM is refused.
        let a = c.pm(PmId(2)).first_feasible(&vm).unwrap();
        assert_eq!(
            c.place(PmId(2), vm.clone(), a),
            Err(ModelError::PmDown(PmId(2)))
        );

        // Recovery restores visibility and placements.
        c.mark_up(PmId(2)).unwrap();
        assert_eq!(c.down_pm_count(), 1);
        let a = c.pm(PmId(2)).first_feasible(&vm).unwrap();
        assert!(c.place(PmId(2), vm, a).is_ok());
        assert!(c.mark_down(PmId(9)).is_err());
        assert!(!c.is_down(PmId(9)));
    }

    #[test]
    fn resident_vms_are_sorted_for_determinism() {
        let mut c = Cluster::homogeneous(catalog::pm_m3(), 1);
        let vm = catalog::vm_m3_medium();
        let mut ids = Vec::new();
        for _ in 0..4 {
            let a = c.pm(PmId(0)).first_feasible(&vm).unwrap();
            ids.push(c.place(PmId(0), vm.clone(), a).unwrap());
        }
        assert_eq!(c.resident_vms(PmId(0)), ids);
    }

    #[test]
    fn active_cpu_utilization_only_counts_active_pms() {
        let mut c = Cluster::homogeneous(catalog::pm_m3(), 2);
        assert_eq!(c.active_cpu_utilization(), 0.0);
        let vm = catalog::vm_m3_2xlarge(); // 8 x 600 MHz = 4800 of 20800
        let a = c.pm(PmId(0)).first_feasible(&vm).unwrap();
        c.place(PmId(0), vm, a).unwrap();
        let util = c.active_cpu_utilization();
        assert!((util - 4800.0 / 20800.0).abs() < 1e-12, "{util}");
    }
}
