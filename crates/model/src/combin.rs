//! Enumeration of *distinct* anti-collocated placements.
//!
//! A VM's demand on an anti-collocated resource kind (vCPUs on cores,
//! virtual disks on physical disks) is **permutable**: `{α,α,0,0}` and
//! `{0,0,α,α}` are the same request (paper §IV). Placing the demand means
//! picking a *distinct* dimension for each demand element. Naively there are
//! `P(n, k)` permutations, but dimensions with identical `(used, capacity)`
//! are interchangeable, so the number of *distinct resulting usage profiles*
//! is tiny. This module enumerates exactly one representative assignment per
//! distinct outcome — the operation both Algorithm 2 (scoring every
//! permutation of a VM's request) and the profile-graph construction rest on.

use std::collections::HashSet;

/// Enumerate one representative assignment per distinct resulting usage
/// multiset, when placing `demands` onto dimensions with current usage
/// `used[i]` and capacity `caps[i]`.
///
/// Each returned vector is parallel to `demands`: entry `j` is the dimension
/// index receiving `demands[j]`. All entries within one assignment are
/// distinct (anti-collocation).
///
/// `demands` must be sorted in descending order (callers keep demands
/// canonicalised; see [`crate::VmSpec::disks`]). Zero-valued demands still
/// occupy a dimension — the paper's anti-collocation is about *distinctness*,
/// and all real demands are positive anyway.
///
/// # Panics
///
/// Panics if `used.len() != caps.len()` or `demands` is not sorted
/// descending.
#[must_use]
pub fn distinct_placements(used: &[u64], caps: &[u64], demands: &[u64]) -> Vec<Vec<usize>> {
    assert_eq!(used.len(), caps.len(), "used/caps length mismatch");
    assert!(
        demands.windows(2).all(|w| w[0] >= w[1]),
        "demands must be sorted descending"
    );
    if demands.len() > used.len() {
        return Vec::new();
    }
    if demands.is_empty() {
        return vec![Vec::new()];
    }

    // Group interchangeable dimensions: identical (used, cap) pairs.
    let mut groups: Vec<(u64, u64, Vec<usize>)> = Vec::new();
    let mut order: Vec<usize> = (0..used.len()).collect();
    order.sort_unstable_by_key(|&i| (used[i], caps[i]));
    for i in order {
        match groups.last_mut() {
            Some((u, c, dims)) if *u == used[i] && *c == caps[i] => dims.push(i),
            _ => groups.push((used[i], caps[i], vec![i])),
        }
    }

    // Run-length encode demands by value (they are sorted descending).
    let mut runs: Vec<(u64, usize)> = Vec::new();
    for &d in demands {
        match runs.last_mut() {
            Some((v, k)) if *v == d => *k += 1,
            _ => runs.push((d, 1)),
        }
    }

    let mut results = Vec::new();
    let mut taken = vec![0usize; groups.len()]; // dims consumed per group
    let mut choice: Vec<Vec<usize>> = vec![vec![0; groups.len()]; runs.len()];
    distribute(
        &groups,
        &runs,
        0,
        &mut taken,
        &mut choice,
        &mut results,
        demands,
    );

    // Distinct distributions almost always give distinct outcomes, but we do
    // not rely on it: dedupe on the resulting usage multiset.
    let mut seen = HashSet::new();
    results.retain(|assignment: &Vec<usize>| {
        let mut outcome = used.to_vec();
        for (j, &dim) in assignment.iter().enumerate() {
            outcome[dim] += demands[j];
        }
        outcome.sort_unstable();
        seen.insert(outcome)
    });
    results
}

/// Recursively distribute each run of equal-valued demands over the groups.
fn distribute(
    groups: &[(u64, u64, Vec<usize>)],
    runs: &[(u64, usize)],
    run_idx: usize,
    taken: &mut [usize],
    choice: &mut [Vec<usize>],
    results: &mut Vec<Vec<usize>>,
    demands: &[u64],
) {
    if run_idx == runs.len() {
        // Materialise one representative assignment: for each run, hand its
        // chosen count per group to the next untaken dims of that group.
        let mut cursor = vec![0usize; groups.len()];
        let mut assignment = Vec::with_capacity(demands.len());
        for counts in choice.iter() {
            for (g, &count) in counts.iter().enumerate() {
                for _ in 0..count {
                    assignment.push(groups[g].2[cursor[g]]);
                    cursor[g] += 1;
                }
            }
        }
        results.push(assignment);
        return;
    }

    let (value, count) = runs[run_idx];
    // Choose how many of this run's demands go to each group.
    #[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
    fn rec(
        groups: &[(u64, u64, Vec<usize>)],
        runs: &[(u64, usize)],
        run_idx: usize,
        value: u64,
        remaining: usize,
        g: usize,
        taken: &mut [usize],
        choice: &mut [Vec<usize>],
        results: &mut Vec<Vec<usize>>,
        demands: &[u64],
    ) {
        if remaining == 0 {
            // Zero out the rest of this run's row before descending.
            for slot in g..groups.len() {
                choice[run_idx][slot] = 0;
            }
            distribute(groups, runs, run_idx + 1, taken, choice, results, demands);
            return;
        }
        if g == groups.len() {
            return; // demands left over, no group to hold them
        }
        let (used, cap, dims) = &groups[g];
        let fits = used + value <= *cap;
        let avail = if fits { dims.len() - taken[g] } else { 0 };
        for c in (0..=avail.min(remaining)).rev() {
            choice[run_idx][g] = c;
            taken[g] += c;
            rec(
                groups,
                runs,
                run_idx,
                value,
                remaining - c,
                g + 1,
                taken,
                choice,
                results,
                demands,
            );
            taken[g] -= c;
        }
        choice[run_idx][g] = 0;
    }
    rec(
        groups, runs, run_idx, value, count, 0, taken, choice, results, demands,
    );
}

/// Find any single feasible anti-collocated assignment, or `None`.
///
/// Greedy: match demands (descending) to dimensions in order of descending
/// free capacity. Because every demand is compatible with a *prefix* of the
/// dimensions in that order, the greedy matching is complete: it fails only
/// when no assignment exists.
#[must_use]
pub fn first_feasible(used: &[u64], caps: &[u64], demands: &[u64]) -> Option<Vec<usize>> {
    assert_eq!(used.len(), caps.len(), "used/caps length mismatch");
    assert!(
        demands.windows(2).all(|w| w[0] >= w[1]),
        "demands must be sorted descending"
    );
    if demands.len() > used.len() {
        return None;
    }
    let mut dims: Vec<usize> = (0..used.len()).collect();
    dims.sort_unstable_by_key(|&i| std::cmp::Reverse(caps[i].saturating_sub(used[i])));
    let mut assignment = Vec::with_capacity(demands.len());
    for (j, &d) in demands.iter().enumerate() {
        let dim = dims[j];
        if used[dim] + d > caps[dim] {
            return None;
        }
        assignment.push(dim);
    }
    Some(assignment)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcomes(used: &[u64], caps: &[u64], demands: &[u64]) -> Vec<Vec<u64>> {
        let mut out: Vec<Vec<u64>> = distinct_placements(used, caps, demands)
            .into_iter()
            .map(|a| {
                let mut v = used.to_vec();
                for (j, &dim) in a.iter().enumerate() {
                    v[dim] += demands[j];
                }
                v.sort_unstable();
                v
            })
            .collect();
        out.sort();
        out
    }

    #[test]
    fn empty_demand_has_single_trivial_placement() {
        assert_eq!(distinct_placements(&[0, 0], &[4, 4], &[]), vec![vec![]]);
    }

    #[test]
    fn too_many_demands_yields_nothing() {
        assert!(distinct_placements(&[0, 0], &[4, 4], &[1, 1, 1]).is_empty());
    }

    #[test]
    fn identical_dims_collapse_to_one_outcome() {
        // Placing [1,1] on an empty 4-core PM: only one distinct outcome.
        let p = distinct_placements(&[0, 0, 0, 0], &[4, 4, 4, 4], &[1, 1]);
        assert_eq!(p.len(), 1);
        assert_eq!(
            outcomes(&[0, 0, 0, 0], &[4, 4, 4, 4], &[1, 1]),
            vec![vec![0, 0, 1, 1]]
        );
    }

    #[test]
    fn distinct_usages_generate_multiple_outcomes() {
        // Paper §V-A: profile [2,2,0,0] hosting a [1,1] VM can become
        // [3,3,0,0], [3,2,1,0] (i.e. [2,0]+1s split) or [2,2,1,1].
        let got = outcomes(&[2, 2, 0, 0], &[4, 4, 4, 4], &[1, 1]);
        assert_eq!(
            got,
            vec![vec![0, 0, 3, 3], vec![0, 1, 2, 3], vec![1, 1, 2, 2]]
        );
    }

    #[test]
    fn capacity_is_respected() {
        // One core is full: the [1,1,1,1] VM no longer fits.
        assert!(distinct_placements(&[4, 0, 0, 0], &[4, 4, 4, 4], &[1, 1, 1, 1]).is_empty());
        // But [1,1] still fits on the three free cores.
        let got = outcomes(&[4, 0, 0, 0], &[4, 4, 4, 4], &[1, 1]);
        assert_eq!(got, vec![vec![0, 1, 1, 4]]);
    }

    #[test]
    fn heterogeneous_demands() {
        // Two disks of different size onto two empty disks: one outcome
        // (disks interchangeable).
        let p = distinct_placements(&[0, 0], &[250, 250], &[40, 8]);
        assert_eq!(p.len(), 1);
        // Onto disks with different usage: both pairings are distinct.
        let got = outcomes(&[10, 0], &[250, 250], &[40, 8]);
        assert_eq!(got, vec![vec![8, 50], vec![18, 40]]);
    }

    #[test]
    fn anti_collocation_within_assignment() {
        for a in distinct_placements(&[0, 1, 2, 3], &[4, 4, 4, 4], &[1, 1, 1]) {
            let mut dims = a.clone();
            dims.sort_unstable();
            dims.dedup();
            assert_eq!(dims.len(), a.len(), "assignment reused a dimension: {a:?}");
        }
    }

    #[test]
    fn representative_assignment_matches_outcome_count() {
        // 8 cores, mixed usage; 4-vCPU VM.
        let used = [0, 0, 1, 1, 2, 2, 3, 3];
        let caps = [4u64; 8];
        let placements = distinct_placements(&used, &caps, &[1, 1, 1, 1]);
        // Choose 4 of the 4 usage groups with repetition, bounded by group
        // size 2: compositions of 4 into 4 parts each <= 2 and value 3 group
        // excluded (3+1 <= 4 ok, so included).
        let outcomes: HashSet<Vec<u64>> = placements
            .iter()
            .map(|a| {
                let mut v = used.to_vec();
                for (j, &dim) in a.iter().enumerate() {
                    v[dim] += [1u64, 1, 1, 1][j];
                }
                v.sort_unstable();
                v
            })
            .collect();
        assert_eq!(outcomes.len(), placements.len(), "duplicate outcomes");
        assert!(!placements.is_empty());
    }

    #[test]
    fn first_feasible_agrees_with_enumeration() {
        let cases: &[(&[u64], &[u64], &[u64])] = &[
            (&[0, 0, 0, 0], &[4, 4, 4, 4], &[1, 1]),
            (&[4, 4, 4, 4], &[4, 4, 4, 4], &[1]),
            (&[3, 3, 2, 2], &[4, 4, 4, 4], &[1, 1, 1, 1]),
            (&[3, 3, 2, 2], &[4, 4, 4, 4], &[2, 2]),
            (&[2, 1], &[4, 4], &[3, 2]),
            (&[2, 1], &[4, 4], &[3, 3]),
        ];
        for &(used, caps, demands) in cases {
            let any = first_feasible(used, caps, demands);
            let all = distinct_placements(used, caps, demands);
            assert_eq!(
                any.is_some(),
                !all.is_empty(),
                "disagreement for {used:?} {demands:?}"
            );
            if let Some(a) = any {
                for (j, &dim) in a.iter().enumerate() {
                    assert!(used[dim] + demands[j] <= caps[dim]);
                }
                let mut d = a.clone();
                d.sort_unstable();
                d.dedup();
                assert_eq!(d.len(), a.len());
            }
        }
    }

    #[test]
    fn zero_capacity_dimensions_never_receive_positive_demand() {
        let p = distinct_placements(&[0, 0], &[0, 4], &[1]);
        assert_eq!(p.len(), 1);
        assert_eq!(p[0], vec![1]);
    }
}
