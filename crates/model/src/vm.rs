//! Virtual machine requests.
//!
//! A [`VmSpec`] is the paper's `r_i = {c_i, β_i, d_i}`: a set of vCPUs (all
//! of equal capacity, as the paper assumes `α_i^1 = … = α_i^{|c_i|}`), a
//! memory demand, and a set of virtual disks. The vCPU and disk demands are
//! **permutable**: the request does not care which physical core or disk each
//! lands on, only that they land on *distinct* ones (anti-collocation).

use crate::units::{DiskGb, MemMib, Mhz};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Resource request of one virtual machine (the paper's `r_i`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VmSpec {
    /// Human-readable type name, e.g. `"m3.large"`.
    pub name: String,
    /// Number of requested vCPUs, `|c_i|`. Each must be placed on a distinct
    /// physical core.
    pub vcpus: u32,
    /// Capacity requested by *each* vCPU (`α_i^k`).
    pub vcpu_mhz: Mhz,
    /// Memory requirement `β_i`.
    pub memory: MemMib,
    /// Requested virtual disk sizes (`γ_i^k`), each on a distinct physical
    /// disk. Stored sorted descending so equal specs compare equal.
    disks: Vec<DiskGb>,
}

impl VmSpec {
    /// Create a VM spec.
    ///
    /// `disks` may be given in any order; it is canonicalised (sorted
    /// descending) so that two specs with the same multiset of disks are
    /// equal.
    ///
    /// # Panics
    ///
    /// Panics if `vcpus == 0` — the model has no use for a VM without CPU.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        vcpus: u32,
        vcpu_mhz: Mhz,
        memory: MemMib,
        mut disks: Vec<DiskGb>,
    ) -> Self {
        assert!(vcpus > 0, "a VM must request at least one vCPU");
        disks.sort_unstable_by(|a, b| b.cmp(a));
        Self {
            name: name.into(),
            vcpus,
            vcpu_mhz,
            memory,
            disks,
        }
    }

    /// A CPU-only VM type, used by the GENI testbed experiment (e.g. the
    /// paper's `[1,1]` and `[1,1,1,1]` types).
    #[must_use]
    pub fn cpu_only(name: impl Into<String>, vcpus: u32, vcpu_mhz: Mhz) -> Self {
        Self::new(name, vcpus, vcpu_mhz, MemMib::ZERO, Vec::new())
    }

    /// The requested virtual disk sizes, sorted descending.
    #[must_use]
    pub fn disks(&self) -> &[DiskGb] {
        &self.disks
    }

    /// Total CPU demand across all vCPUs.
    #[must_use]
    pub fn total_cpu(&self) -> Mhz {
        Mhz(self.vcpu_mhz.get() * u64::from(self.vcpus))
    }

    /// Total disk demand across all virtual disks.
    #[must_use]
    pub fn total_disk(&self) -> DiskGb {
        self.disks.iter().copied().sum()
    }

    /// The FFDSum "size" of this VM: the sum of its demands, each normalised
    /// by the corresponding capacity of a reference PM. Used by the FFDSum
    /// baseline to order VMs decreasingly.
    #[must_use]
    pub fn normalized_size(&self, cpu_cap: Mhz, mem_cap: MemMib, disk_cap: DiskGb) -> f64 {
        self.total_cpu().fraction_of(cpu_cap)
            + self.memory.fraction_of(mem_cap)
            + self.total_disk().fraction_of(disk_cap)
    }
}

impl fmt::Display for VmSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} vCPU x {}, {}, {} disks)",
            self.name,
            self.vcpus,
            self.vcpu_mhz,
            self.memory,
            self.disks.len()
        )
    }
}

/// A concrete VM instance: a spec plus the identity it carries through a
/// simulation. Instances are created by [`crate::Cluster::place`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Vm {
    /// Identity within a [`crate::Cluster`].
    pub id: crate::cluster::VmId,
    /// The resource request.
    pub spec: VmSpec,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> VmSpec {
        VmSpec::new(
            "m3.xlarge",
            4,
            Mhz(600),
            MemMib::from_gib(15.0),
            vec![DiskGb(40), DiskGb(40)],
        )
    }

    #[test]
    fn totals() {
        let s = spec();
        assert_eq!(s.total_cpu(), Mhz(2400));
        assert_eq!(s.total_disk(), DiskGb(80));
    }

    #[test]
    fn disks_are_canonicalised() {
        let a = VmSpec::new("x", 1, Mhz(100), MemMib(0), vec![DiskGb(1), DiskGb(9)]);
        let b = VmSpec::new("x", 1, Mhz(100), MemMib(0), vec![DiskGb(9), DiskGb(1)]);
        assert_eq!(a, b);
        assert_eq!(a.disks(), &[DiskGb(9), DiskGb(1)]);
    }

    #[test]
    #[should_panic(expected = "at least one vCPU")]
    fn zero_vcpus_rejected() {
        let _ = VmSpec::cpu_only("bad", 0, Mhz(100));
    }

    #[test]
    fn normalized_size_sums_fractions() {
        let s = VmSpec::new("x", 2, Mhz(500), MemMib(1024), vec![DiskGb(50)]);
        let size = s.normalized_size(Mhz(2000), MemMib(4096), DiskGb(100));
        // 1000/2000 + 1024/4096 + 50/100 = 0.5 + 0.25 + 0.5
        assert!((size - 1.25).abs() < 1e-12);
    }

    #[test]
    fn cpu_only_has_no_memory_or_disk() {
        let s = VmSpec::cpu_only("[1,1]", 2, Mhz(650));
        assert_eq!(s.memory, MemMib::ZERO);
        assert!(s.disks().is_empty());
        assert_eq!(s.total_cpu(), Mhz(1300));
    }
}
