//! Algorithm interfaces shared by `pagerankvm` and `prvm-baselines`.

use crate::assignment::Assignment;
use crate::cluster::{Cluster, PmId, VmId};
use crate::error::PlaceError;
use crate::pm::Pm;
use crate::units::Mhz;
use crate::vm::VmSpec;

/// The outcome of a placement choice: a PM and the concrete
/// anti-collocation-respecting assignment to apply there.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacementDecision {
    /// The chosen PM.
    pub pm: PmId,
    /// Where each vCPU / virtual disk lands.
    pub assignment: Assignment,
}

/// A VM placement algorithm (PageRankVM or a baseline).
///
/// Implementations must *not* mutate the cluster — they only choose; the
/// caller applies the decision via [`Cluster::place`]. This keeps every
/// algorithm trivially comparable under the same driver.
pub trait PlacementAlgorithm {
    /// Short name used in experiment output (e.g. `"PageRankVM"`, `"FF"`).
    fn name(&self) -> &str;

    /// Reorder a batch of requests before sequential placement. Only
    /// FFDSum overrides this (decreasing normalised size); the default is
    /// arrival order.
    fn order_batch(&self, _vms: &mut [VmSpec]) {}

    /// Choose a PM and assignment for `vm`, skipping PMs for which
    /// `exclude` returns `true` (used to keep migrations away from
    /// overloaded hosts). Returns `None` when no PM can host the VM.
    fn choose(
        &mut self,
        cluster: &Cluster,
        vm: &VmSpec,
        exclude: &dyn Fn(PmId) -> bool,
    ) -> Option<PlacementDecision>;
}

/// Picks which VM to evict from an overloaded PM.
pub trait EvictionPolicy {
    /// Short name used in experiment output.
    fn name(&self) -> &str;

    /// Choose the next VM to evict from `pm`. `cpu_demand` reports each
    /// resident VM's *current* CPU demand (trace-driven, may be below its
    /// reservation). Returns `None` if the PM hosts no VMs.
    fn select(&mut self, pm: &Pm, cpu_demand: &dyn Fn(VmId) -> Mhz) -> Option<VmId>;
}

/// Drive an algorithm over a batch of requests: order them, then place each
/// in sequence (the paper's initial VM allocation).
///
/// # Errors
///
/// Returns [`PlaceError::NoFeasiblePm`] on the first request no PM can
/// host; earlier placements remain applied (mirroring Algorithm 2's "Exit —
/// no solution").
pub fn place_batch(
    algo: &mut dyn PlacementAlgorithm,
    cluster: &mut Cluster,
    mut vms: Vec<VmSpec>,
) -> Result<Vec<VmId>, PlaceError> {
    algo.order_batch(&mut vms);
    let mut ids = Vec::with_capacity(vms.len());
    for vm in vms {
        let decision = algo
            .choose(cluster, &vm, &|_| false)
            .ok_or(PlaceError::NoFeasiblePm)?;
        let id = cluster
            .place(decision.pm, vm, decision.assignment)
            .map_err(|_| PlaceError::InfeasibleAssignment { pm: decision.pm })?;
        ids.push(id);
    }
    Ok(ids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    /// A toy first-fit used to exercise the driver without depending on the
    /// baselines crate.
    struct ToyFirstFit;

    impl PlacementAlgorithm for ToyFirstFit {
        fn name(&self) -> &str {
            "toy-ff"
        }

        fn choose(
            &mut self,
            cluster: &Cluster,
            vm: &VmSpec,
            exclude: &dyn Fn(PmId) -> bool,
        ) -> Option<PlacementDecision> {
            cluster
                .used_pms()
                .chain(cluster.unused_pms())
                .filter(|&pm| !exclude(pm))
                .find_map(|pm| {
                    cluster
                        .pm(pm)
                        .first_feasible(vm)
                        .map(|assignment| PlacementDecision { pm, assignment })
                })
        }
    }

    #[test]
    fn place_batch_places_everything_when_capacity_suffices() {
        let mut cluster = Cluster::homogeneous(catalog::pm_m3(), 4);
        let vms = vec![catalog::vm_m3_large(); 6];
        let ids = place_batch(&mut ToyFirstFit, &mut cluster, vms).unwrap();
        assert_eq!(ids.len(), 6);
        assert_eq!(cluster.vm_count(), 6);
    }

    #[test]
    fn place_batch_reports_no_solution() {
        let mut cluster = Cluster::homogeneous(catalog::pm_c3(), 1);
        // C3 has 7.5 GiB; three m3.large (7.5 GiB each) cannot all fit.
        let vms = vec![catalog::vm_m3_large(); 3];
        let err = place_batch(&mut ToyFirstFit, &mut cluster, vms).unwrap_err();
        assert_eq!(err, PlaceError::NoFeasiblePm);
        assert_eq!(cluster.vm_count(), 1, "placements before failure remain");
    }

    #[test]
    fn exclusion_is_respected() {
        let cluster = {
            let mut c = Cluster::homogeneous(catalog::pm_m3(), 2);
            let vm = catalog::vm_m3_medium();
            let a = c.pm(PmId(0)).first_feasible(&vm).unwrap();
            c.place(PmId(0), vm, a).unwrap();
            c
        };
        let mut algo = ToyFirstFit;
        let vm = catalog::vm_m3_medium();
        let d = algo.choose(&cluster, &vm, &|pm| pm == PmId(0)).unwrap();
        assert_eq!(d.pm, PmId(1));
    }
}
