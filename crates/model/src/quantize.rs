//! Quantization of real-unit specs into the integer profile space.
//!
//! The PageRank score table is computed over a small integer space (the
//! paper's worked examples use capacity 4 per dimension; its GENI experiment
//! uses 4 vCPU slots per core). A [`Quantizer`] maps a PM type to its
//! quantized capacities and each VM type to quantized demands *relative to
//! that PM type*, rounding demands **up** so quantized feasibility is
//! conservative (quantized-feasible implies real-feasible in every
//! per-dimension check up to slot granularity).

use crate::pm::{Pm, PmSpec};
use crate::units::convert;
use crate::vm::VmSpec;
use serde::{Deserialize, Serialize};

/// Resolution of the profile space. See module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Quantizer {
    /// Levels per physical core ("vCPU slots"); the paper's GENI setup uses 4.
    pub core_slots: u64,
    /// Levels for the memory dimension.
    pub mem_levels: u64,
    /// Levels per physical disk.
    pub disk_levels: u64,
}

impl Default for Quantizer {
    /// 4 slots per core (paper §VI-A), 16 memory levels, 4 disk levels —
    /// for the Table I/II catalog this yields a ~49k-node / 1.5M-edge
    /// profile graph that builds in under a second in release mode, with
    /// ≤ 8 % memory rounding error on every Table I type.
    fn default() -> Self {
        Self {
            core_slots: 4,
            mem_levels: 16,
            disk_levels: 4,
        }
    }
}

/// Quantized capacities of a PM type.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QuantizedPm {
    /// Number of cores.
    pub cores: usize,
    /// Slots per core.
    pub core_cap: u64,
    /// Memory capacity in levels; `0` when the PM has no memory dimension
    /// (CPU-only experiments).
    pub mem_cap: u64,
    /// Number of disks.
    pub disks: usize,
    /// Levels per disk; `0` when the PM has no disks.
    pub disk_cap: u64,
}

/// Quantized demands of a VM type relative to one PM type.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QuantizedVm {
    /// VM type name (diagnostics).
    pub name: String,
    /// Number of vCPUs (each goes to a distinct core).
    pub vcpus: usize,
    /// Slots demanded by each vCPU.
    pub vcpu_slots: u64,
    /// Memory demand in levels.
    pub mem_units: u64,
    /// Disk demand in levels, one per virtual disk (sorted descending).
    pub disk_units: Vec<u64>,
}

/// `ceil(value * levels / cap)`, with 0 for an absent dimension.
fn ceil_units(value: u64, cap: u64, levels: u64) -> u64 {
    if cap == 0 || value == 0 {
        0
    } else {
        (value * levels).div_ceil(cap)
    }
}

/// `round(value * levels / cap)`, at least 1 for a positive demand.
///
/// Used for vCPU slots: ceiling would inflate a 0.7 GHz vCPU to two
/// 0.65 GHz slots (+86 %), collapsing the scored space long before the PM
/// is really full. Nearest-rounding keeps the profile faithful; the placer
/// re-validates every candidate against real capacities, so the slight
/// optimism can never admit an infeasible placement.
fn round_units(value: u64, cap: u64, levels: u64) -> u64 {
    if cap == 0 || value == 0 {
        0
    } else {
        ((value * levels + cap / 2) / cap).max(1)
    }
}

impl Quantizer {
    /// Quantize a PM type's capacities.
    ///
    /// # Panics
    ///
    /// Panics if the PM's disks are not homogeneous — the profile space
    /// treats disks as interchangeable, which requires equal capacities
    /// (true of Table II and of every major cloud PM SKU).
    #[must_use]
    pub fn quantize_pm(&self, pm: &PmSpec) -> QuantizedPm {
        let disk_cap = if pm.disks().is_empty() {
            0
        } else {
            let first = pm.disks()[0];
            assert!(
                pm.disks().iter().all(|&d| d == first),
                "profile space requires homogeneous disks"
            );
            self.disk_levels
        };
        QuantizedPm {
            cores: convert::u32_to_usize(pm.cores),
            core_cap: self.core_slots,
            mem_cap: if pm.memory.get() == 0 {
                0
            } else {
                self.mem_levels
            },
            disks: pm.disks().len(),
            disk_cap,
        }
    }

    /// Quantize a VM type's demands relative to `pm`. Memory and disk
    /// round up (conservative); vCPU slots round to nearest.
    #[must_use]
    pub fn quantize_vm(&self, vm: &VmSpec, pm: &PmSpec) -> QuantizedVm {
        let vcpu_slots = round_units(vm.vcpu_mhz.get(), pm.core_mhz.get(), self.core_slots);
        let mem_units = ceil_units(vm.memory.get(), pm.memory.get(), self.mem_levels);
        let disk_cap = pm.disks().first().map_or(0, |d| d.get());
        let mut disk_units: Vec<u64> = vm
            .disks()
            .iter()
            .map(|d| ceil_units(d.get(), disk_cap, self.disk_levels))
            .collect();
        disk_units.sort_unstable_by(|a, b| b.cmp(a));
        QuantizedVm {
            name: vm.name.clone(),
            vcpus: convert::u32_to_usize(vm.vcpus),
            vcpu_slots,
            mem_units,
            disk_units,
        }
    }

    /// The current quantized usage of a live PM: the sum of its resident
    /// VMs' quantized demands, mapped through their assignments.
    ///
    /// Returns `(per-core slots, memory levels, per-disk levels)`. Because
    /// every placement made through the PageRankVM placer is
    /// quantized-feasible, this usage normally stays within the quantized
    /// capacities; fallback placements may exceed them, in which case score
    /// lookups simply miss (documented in DESIGN.md §5).
    #[must_use]
    pub fn quantized_usage(&self, pm: &Pm) -> (Vec<u64>, u64, Vec<u64>) {
        let spec = pm.spec();
        let mut cores = vec![0u64; convert::u32_to_usize(spec.cores)];
        let mut mem = 0u64;
        let mut disks = vec![0u64; spec.disks().len()];
        for (_, vm, assignment) in pm.vms() {
            let q = self.quantize_vm(vm, spec);
            for &c in &assignment.cores {
                cores[c] += q.vcpu_slots;
            }
            mem += q.mem_units;
            for (k, &d) in assignment.disks.iter().enumerate() {
                disks[d] += q.disk_units[k];
            }
        }
        (cores, mem, disks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use crate::cluster::VmId;
    use crate::units::{DiskGb, MemMib, Mhz};

    #[test]
    fn default_quantization_of_m3_pm() {
        let q = Quantizer::default();
        let pm = q.quantize_pm(&catalog::pm_m3());
        assert_eq!(
            pm,
            QuantizedPm {
                cores: 8,
                core_cap: 4,
                mem_cap: 16,
                disks: 4,
                disk_cap: 4
            }
        );
    }

    #[test]
    fn cpu_only_pm_has_no_mem_or_disk_dimensions() {
        let q = Quantizer::default();
        let pm = q.quantize_pm(&catalog::geni_pm());
        assert_eq!(pm.mem_cap, 0);
        assert_eq!(pm.disks, 0);
    }

    #[test]
    fn vm_demands_round_up() {
        let q = Quantizer::default();
        let m3 = catalog::pm_m3();
        // m3.medium: 600 MHz of a 2600 MHz core at 4 slots -> 1 slot.
        let v = q.quantize_vm(&catalog::vm_m3_medium(), &m3);
        assert_eq!(v.vcpu_slots, 1);
        // 3.75 GiB of 64 GiB at 16 levels -> ceil(0.9375) = 1 level.
        assert_eq!(v.mem_units, 1);
        // 4 GB of 250 GB at 4 levels -> 1 level.
        assert_eq!(v.disk_units, vec![1]);

        // c3 vCPUs are 700 MHz: round(700*4/2600) = 1 slot (nearest).
        let v = q.quantize_vm(&catalog::vm_c3_large(), &m3);
        assert_eq!(v.vcpu_slots, 1);

        // m3.2xlarge: 30 GiB -> ceil(30*16/64) = 8 levels; 80 GB disks ->
        // ceil(80*4/250) = 2 levels each.
        let v = q.quantize_vm(&catalog::vm_m3_2xlarge(), &m3);
        assert_eq!(v.mem_units, 8);
        assert_eq!(v.disk_units, vec![2, 2]);
    }

    #[test]
    fn quantized_usage_sums_resident_vms() {
        let q = Quantizer::default();
        let mut pm = Pm::new(catalog::pm_m3());
        let vm = catalog::vm_m3_xlarge();
        let a = pm.first_feasible(&vm).unwrap();
        pm.place(VmId(0), vm, a.clone()).unwrap();

        let (cores, mem, disks) = q.quantized_usage(&pm);
        assert_eq!(cores.iter().sum::<u64>(), 4); // 4 vCPUs x 1 slot
        assert_eq!(mem, 4); // 15 GiB of 64 at 16 levels -> 4 levels
        assert_eq!(disks.iter().sum::<u64>(), 2); // 2 disks x 1 level
        for &c in &a.cores {
            assert_eq!(cores[c], 1);
        }
    }

    #[test]
    #[should_panic(expected = "homogeneous disks")]
    fn heterogeneous_disks_rejected() {
        let pm = PmSpec::new(
            "odd",
            2,
            Mhz(1000),
            MemMib(1024),
            vec![DiskGb(100), DiskGb(200)],
        );
        let _ = Quantizer::default().quantize_pm(&pm);
    }

    #[test]
    fn zero_demand_quantizes_to_zero() {
        let q = Quantizer::default();
        let v = q.quantize_vm(&catalog::geni_vm_2(), &catalog::geni_pm());
        assert_eq!(v.mem_units, 0);
        assert!(v.disk_units.is_empty());
        assert_eq!(v.vcpu_slots, 1); // 1 of 4 "MHz" at 4 slots
    }
}
