//! Concrete placements of a VM onto a PM's physical dimensions.
//!
//! An [`Assignment`] is the concrete realisation of the paper's binary
//! variables: `cores[k] = l` corresponds to `y_{ikjl} = 1` (vCPU `k` runs on
//! physical core `l`) and `disks[k] = l` to `z_{ikjl} = 1`. The
//! anti-collocation constraints (Equ. (4) and (9)) become the requirement
//! that `cores` and `disks` each contain distinct indices.

use serde::{Deserialize, Serialize};

/// Mapping of a VM's permutable demands onto a specific PM's dimensions.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Assignment {
    /// Physical core index hosting each vCPU; parallel to the VM's vCPUs.
    /// Indices are distinct (CPU anti-collocation, Equ. (4)).
    pub cores: Vec<usize>,
    /// Physical disk index hosting each virtual disk; parallel to
    /// [`crate::VmSpec::disks`]. Indices are distinct (disk anti-collocation,
    /// Equ. (9)).
    pub disks: Vec<usize>,
}

impl Assignment {
    /// Create an assignment from explicit core and disk choices.
    #[must_use]
    pub fn new(cores: Vec<usize>, disks: Vec<usize>) -> Self {
        Self { cores, disks }
    }

    /// `true` if both index sets respect anti-collocation (all distinct).
    #[must_use]
    pub fn is_anti_collocated(&self) -> bool {
        fn distinct(v: &[usize]) -> bool {
            let mut s = v.to_vec();
            s.sort_unstable();
            s.windows(2).all(|w| w[0] != w[1])
        }
        distinct(&self.cores) && distinct(&self.disks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_collocation_violations() {
        assert!(Assignment::new(vec![0, 1], vec![2, 3]).is_anti_collocated());
        assert!(!Assignment::new(vec![0, 0], vec![]).is_anti_collocated());
        assert!(!Assignment::new(vec![], vec![1, 1]).is_anti_collocated());
        assert!(Assignment::default().is_anti_collocated());
    }
}
