//! Datacenter resource model for the PageRankVM reproduction.
//!
//! This crate provides the substrate every other crate builds on:
//!
//! * integer-exact resource [`units`] (MHz, MiB, GB) so capacity checks never
//!   suffer floating-point drift;
//! * [`VmSpec`]/[`PmSpec`] descriptions and the EC2-derived [`catalog`]
//!   (Tables I and II of the paper);
//! * [`Assignment`]s that record *which* physical core hosts each vCPU and
//!   *which* physical disk hosts each virtual disk — the paper's `y`/`z`
//!   binary variables — and enforce the anti-collocation constraints
//!   (Equ. (3)–(4) and (8)–(9));
//! * a [`Cluster`] of physical machines with the paper's
//!   `used_PM_list` / `unused_PM_list` bookkeeping;
//! * the [`combin`] module, which enumerates the *distinct* outcomes of
//!   placing a permutable multi-dimensional demand onto interchangeable
//!   dimensions (the combinatorial heart shared with the profile graph);
//! * the [`Quantizer`] bridging real-unit specs into the small integer
//!   profile space the PageRank table is built over;
//! * the [`PlacementAlgorithm`] and [`EvictionPolicy`] traits implemented by
//!   `pagerankvm` and `prvm-baselines`.
//!
//! # Example
//!
//! ```
//! use prvm_model::{catalog, Cluster};
//!
//! // A small datacenter of four M3 hosts.
//! let mut cluster = Cluster::homogeneous(catalog::pm_m3(), 4);
//! let vm = catalog::vm_m3_large();
//!
//! // Find a feasible anti-collocated assignment on the first PM and place it.
//! let assignment = cluster.pm(prvm_model::PmId(0)).first_feasible(&vm).unwrap();
//! let vm_id = cluster.place(prvm_model::PmId(0), vm, assignment).unwrap();
//! assert_eq!(cluster.used_pms().count(), 1);
//! cluster.remove(vm_id).unwrap();
//! assert_eq!(cluster.used_pms().count(), 0);
//! ```

#![warn(missing_docs)]

pub mod affinity;
pub mod assignment;
pub mod catalog;
pub mod cluster;
pub mod combin;
pub mod error;
pub mod pm;
pub mod quantize;
pub mod traits;
pub mod units;
pub mod vm;

pub use affinity::{place_batch_with_rules, AffinityRules};
pub use assignment::Assignment;
pub use cluster::{Cluster, PmId, VmId};
pub use error::{ModelError, PlaceError};
pub use pm::{Pm, PmSpec};
pub use quantize::{QuantizedPm, QuantizedVm, Quantizer};
pub use traits::{place_batch, EvictionPolicy, PlacementAlgorithm, PlacementDecision};
pub use units::{DiskGb, MemMib, Mhz};
pub use vm::{Vm, VmSpec};
