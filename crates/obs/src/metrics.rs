//! Run-metrics registry: named counters, gauges, log-scale histograms
//! and numeric series, all thread-safe and cheap enough to leave on in
//! hot paths (plain atomics; no locks after first lookup).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

/// Monotonic event count.
#[derive(Debug, Default)]
#[must_use]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add `delta` occurrences.
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Add `delta` occurrences and return the new total. Handy for
    /// handing out unique run ids from a counter.
    pub fn add_fetch(&self, delta: u64) -> u64 {
        self.0.fetch_add(delta, Ordering::Relaxed) + delta
    }

    /// Add one occurrence.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Last-write-wins floating point value (stored as bits in an atomic).
#[derive(Debug, Default)]
#[must_use]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Record the current level.
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Last recorded level (0.0 if never set).
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// An append-only sequence of observations, for values where the whole
/// trajectory matters (e.g. per-iteration PageRank residuals).
#[derive(Debug, Default)]
#[must_use]
pub struct Series(Mutex<Vec<f64>>);

impl Series {
    /// Append one observation.
    pub fn push(&self, value: f64) {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(value);
    }

    /// Copy of all observations in insertion order.
    pub fn values(&self) -> Vec<f64> {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn reset(&self) {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clear();
    }
}

/// Number of histogram buckets: one for zero plus one per power of two
/// up to `u64::MAX`.
const BUCKETS: usize = 65;

/// Log-scale histogram: bucket `0` holds zeros, bucket `i >= 1` holds
/// values in `[2^(i-1), 2^i)`. Two atomic adds per record.
#[derive(Debug)]
#[must_use]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// Bucket index for a value.
fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Largest value falling into bucket `index`.
fn bucket_upper_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= 64 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

impl Histogram {
    /// Record one observation.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Record a duration in nanoseconds.
    pub fn record_duration(&self, duration: Duration) {
        self.record(duration.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Upper bound of the bucket holding the `q`-quantile observation
    /// (`q` in `[0, 1]`); 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_upper_bound(i);
            }
        }
        u64::MAX
    }

    /// Point-in-time summary.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count();
        let sum = self.sum();
        HistogramSnapshot {
            count,
            sum,
            mean: if count == 0 {
                0.0
            } else {
                sum as f64 / count as f64
            },
            p50: self.quantile(0.50),
            p99: self.quantile(0.99),
        }
    }

    fn reset(&self) {
        for bucket in &self.buckets {
            bucket.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }
}

/// Summary of a [`Histogram`]. `p50`/`p99` are bucket upper bounds, so
/// they over-estimate by at most 2x (log-scale buckets).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub mean: f64,
    pub p50: u64,
    pub p99: u64,
}

/// Wall-time summary of one span path, derived from the `span.<path>`
/// histograms at snapshot time.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PhaseSummary {
    /// Span path, e.g. `simulate/scan`.
    pub name: String,
    /// Times the span was entered.
    pub count: u64,
    /// Total wall time across entries, in milliseconds.
    pub total_ms: f64,
    /// Mean wall time per entry, in milliseconds.
    pub mean_ms: f64,
}

/// Prefix under which [`crate::Span`] records its duration histograms.
pub const SPAN_METRIC_PREFIX: &str = "span.";

/// A namespace of metrics. Most code uses [`Registry::global`]; tests
/// can build private registries.
#[derive(Debug, Default)]
#[must_use]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
    series: RwLock<BTreeMap<String, Arc<Series>>>,
}

/// The process-wide registry, lazily created; `None` until first use.
static GLOBAL: RwLock<Option<Arc<Registry>>> = RwLock::new(None);

/// Bumped on every global-registry swap; see [`Registry::generation`].
static GENERATION: AtomicU64 = AtomicU64::new(0);

fn get_or_insert<T: Default>(map: &RwLock<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    if let Some(found) = map
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .get(name)
    {
        return Arc::clone(found);
    }
    Arc::clone(
        map.write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .entry(name.to_owned())
            .or_default(),
    )
}

impl Registry {
    /// Fresh empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The process-wide registry that the `counter!`/`gauge!` macros
    /// and [`crate::Span`] record into. Replaceable via
    /// [`Registry::install_global`]; cached handles detect the swap
    /// through [`Registry::generation`].
    pub fn global() -> Arc<Registry> {
        if let Some(registry) = GLOBAL
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .as_ref()
        {
            return Arc::clone(registry);
        }
        let mut guard = GLOBAL
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        Arc::clone(guard.get_or_insert_with(|| Arc::new(Registry::new())))
    }

    /// Generation of the global registry. Bumped on every
    /// [`Registry::install_global`] / [`Registry::replace_global`], so a
    /// call site that cached a handle can tell it resolved against an
    /// older global and must re-resolve. Read this **before** calling
    /// [`Registry::global`]: a concurrent swap then costs at most one
    /// wasted re-resolve instead of a permanently stale cache.
    pub fn generation() -> u64 {
        GENERATION.load(Ordering::Acquire)
    }

    /// Swap in `registry` as the process-wide global and return the one
    /// it displaced (a fresh empty registry if none was ever touched).
    /// Bumps [`Registry::generation`] so macro call-site caches refresh.
    pub fn install_global(registry: Arc<Registry>) -> Arc<Registry> {
        let mut guard = GLOBAL
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let old = guard
            .replace(registry)
            .unwrap_or_else(|| Arc::new(Registry::new()));
        GENERATION.fetch_add(1, Ordering::Release);
        old
    }

    /// Install a fresh empty registry as the global and return it.
    /// Test helper: isolates a test's metrics from everything recorded
    /// before, without invalidating handles held on the old registry.
    pub fn replace_global() -> Arc<Registry> {
        let fresh = Arc::new(Registry::new());
        Registry::install_global(Arc::clone(&fresh));
        fresh
    }

    /// Get or create a counter. Call sites on hot paths should cache
    /// the handle (the `counter!` macro does).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_insert(&self.counters, name)
    }

    /// Get or create a gauge.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_insert(&self.gauges, name)
    }

    /// Get or create a histogram.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_insert(&self.histograms, name)
    }

    /// Get or create a series.
    pub fn series(&self, name: &str) -> Arc<Series> {
        get_or_insert(&self.series, name)
    }

    /// Zero every metric in place. Cached handles stay valid.
    pub fn reset(&self) {
        for counter in self
            .counters
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .values()
        {
            counter.reset();
        }
        for gauge in self
            .gauges
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .values()
        {
            gauge.reset();
        }
        for histogram in self
            .histograms
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .values()
        {
            histogram.reset();
        }
        for series in self
            .series
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .values()
        {
            series.reset();
        }
    }

    /// Point-in-time copy of every metric, ordered by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let histograms: Vec<(String, HistogramSnapshot)> = self
            .histograms
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .map(|(name, h)| (name.clone(), h.snapshot()))
            .collect();
        let phases = histograms
            .iter()
            .filter_map(|(name, snap)| {
                let path = name.strip_prefix(SPAN_METRIC_PREFIX)?;
                Some(PhaseSummary {
                    name: path.to_owned(),
                    count: snap.count,
                    total_ms: snap.sum as f64 / 1e6,
                    mean_ms: snap.mean / 1e6,
                })
            })
            .collect();
        MetricsSnapshot {
            phases,
            counters: self
                .counters
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .iter()
                .map(|(name, c)| (name.clone(), c.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .iter()
                .map(|(name, g)| (name.clone(), g.get()))
                .collect(),
            histograms,
            series: self
                .series
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .iter()
                .map(|(name, s)| (name.clone(), s.values()))
                .collect(),
        }
    }
}

/// Frozen copy of a [`Registry`], the shape written by `--metrics`.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Wall-time per span path (histograms under [`SPAN_METRIC_PREFIX`]).
    pub phases: Vec<PhaseSummary>,
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, f64)>,
    pub histograms: Vec<(String, HistogramSnapshot)>,
    pub series: Vec<(String, Vec<f64>)>,
}

/// Hand-written so name-keyed sections serialize as JSON objects
/// rather than arrays of pairs.
impl serde::Serialize for MetricsSnapshot {
    fn to_value(&self) -> serde::Value {
        fn object<T: serde::Serialize>(pairs: &[(String, T)]) -> serde::Value {
            serde::Value::Object(
                pairs
                    .iter()
                    .map(|(name, v)| (name.clone(), v.to_value()))
                    .collect(),
            )
        }
        serde::Value::Object(vec![
            ("phases".to_owned(), self.phases.to_value()),
            ("counters".to_owned(), object(&self.counters)),
            ("gauges".to_owned(), object(&self.gauges)),
            ("histograms".to_owned(), object(&self.histograms)),
            ("series".to_owned(), object(&self.series)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        // Exact boundary values land in the bucket they open.
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(255), 8);
        assert_eq!(bucket_of(256), 9);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(9), 511);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn histogram_quantiles_use_bucket_upper_bounds() {
        let h = Histogram::default();
        for v in [0u64, 1, 1, 3, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 105);
        // Ranked: 0, 1, 1, 3, 100 -> median is 1 (bucket [1,1]).
        assert_eq!(h.quantile(0.5), 1);
        // p99 -> the 100 observation, bucket [64,127].
        assert_eq!(h.quantile(0.99), 127);
        assert_eq!(h.quantile(0.0), 0);
        let snap = h.snapshot();
        assert_eq!(snap.p50, 1);
        assert_eq!(snap.p99, 127);
        assert!((snap.mean - 21.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_snapshot_is_zero() {
        let snap = Histogram::default().snapshot();
        assert_eq!(
            snap,
            HistogramSnapshot {
                count: 0,
                sum: 0,
                mean: 0.0,
                p50: 0,
                p99: 0
            }
        );
    }

    #[test]
    fn registry_reuses_instruments_by_name() {
        let reg = Registry::new();
        reg.counter("x").add(2);
        reg.counter("x").add(3);
        assert_eq!(reg.counter("x").get(), 5);
        reg.gauge("level").set(0.75);
        assert_eq!(reg.gauge("level").get(), 0.75);
        reg.series("residuals").push(0.5);
        reg.series("residuals").push(0.25);
        assert_eq!(reg.series("residuals").values(), vec![0.5, 0.25]);
        reg.reset();
        assert_eq!(reg.counter("x").get(), 0);
        assert_eq!(reg.gauge("level").get(), 0.0);
        assert!(reg.series("residuals").is_empty());
    }

    #[test]
    fn counters_are_atomic_under_thread_fanout() {
        let reg = Arc::new(Registry::new());
        let threads = 8;
        let per_thread = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let reg = Arc::clone(&reg);
                std::thread::spawn(move || {
                    let counter = reg.counter("shared");
                    let histogram = reg.histogram("values");
                    for i in 0..per_thread {
                        counter.incr();
                        histogram.record(i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker");
        }
        assert_eq!(reg.counter("shared").get(), threads * per_thread);
        assert_eq!(reg.histogram("values").count(), threads * per_thread);
        assert_eq!(
            reg.histogram("values").sum(),
            threads * (per_thread * (per_thread - 1) / 2)
        );
    }

    #[test]
    fn snapshot_derives_phases_from_span_histograms() {
        let reg = Registry::new();
        reg.histogram("span.place/pagerank")
            .record_duration(Duration::from_millis(4));
        reg.histogram("span.place/pagerank")
            .record_duration(Duration::from_millis(2));
        reg.histogram("other").record(7);
        let snap = reg.snapshot();
        assert_eq!(snap.phases.len(), 1);
        let phase = &snap.phases[0];
        assert_eq!(phase.name, "place/pagerank");
        assert_eq!(phase.count, 2);
        assert!((phase.total_ms - 6.0).abs() < 0.5);
        assert!((phase.mean_ms - 3.0).abs() < 0.25);
    }

    #[test]
    fn single_sample_histogram_pins_every_quantile() {
        let h = Histogram::default();
        h.record(5);
        let snap = h.snapshot();
        assert_eq!(snap.count, 1);
        assert_eq!(snap.sum, 5);
        assert!((snap.mean - 5.0).abs() < 1e-12);
        // 5 lands in bucket [4,7]; with one sample every quantile is
        // that bucket's upper bound.
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 7, "q={q}");
        }
    }

    #[test]
    fn saturating_bucket_holds_extreme_values() {
        let h = Histogram::default();
        h.record(u64::MAX);
        h.record(1u64 << 63);
        // Both land in the top bucket, whose upper bound saturates.
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile(0.5), u64::MAX);
        assert_eq!(h.quantile(1.0), u64::MAX);
        // Durations beyond u64 nanoseconds clamp instead of wrapping.
        let h2 = Histogram::default();
        h2.record_duration(Duration::from_secs(u64::MAX / 1_000_000_000 + 1));
        assert_eq!(h2.quantile(1.0), u64::MAX);
    }

    proptest::proptest! {
        /// Nearest-rank agreement with a sorted-vec oracle: the
        /// histogram's quantile must equal the upper bound of the
        /// bucket holding the oracle's nearest-rank sample.
        #[test]
        fn quantiles_match_sorted_vec_oracle(
            values in proptest::collection::vec(0u64..1_000_000, 1..200),
            q in 0.0f64..=1.0,
        ) {
            let h = Histogram::default();
            for &v in &values {
                h.record(v);
            }
            let mut sorted = values.clone();
            sorted.sort_unstable();
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let expected = bucket_upper_bound(bucket_of(sorted[rank - 1]));
            proptest::prop_assert_eq!(h.quantile(q), expected);
        }
    }

    #[test]
    fn install_global_swaps_and_bumps_generation() {
        let _guard = crate::global_registry_test_lock();
        let before = Registry::generation();
        let old = Registry::global();
        old.counter("metrics_global_swap.marker").add(1);
        let fresh = Registry::replace_global();
        assert!(Registry::generation() > before);
        assert_eq!(fresh.counter("metrics_global_swap.marker").get(), 0);
        assert_eq!(old.counter("metrics_global_swap.marker").get(), 1);
        assert!(Arc::ptr_eq(&Registry::global(), &fresh));
        let displaced = Registry::install_global(old);
        assert!(Arc::ptr_eq(&displaced, &fresh));
    }

    #[test]
    fn snapshot_serializes_name_keyed_objects() {
        let reg = Registry::new();
        reg.counter("migrations").add(3);
        reg.gauge("utilization").set(0.5);
        let json = serde_json::to_string(&reg.snapshot()).expect("serializable");
        assert!(json.contains("\"migrations\":3"));
        assert!(json.contains("\"utilization\":0.5"));
        assert!(json.contains("\"phases\":[]"));
    }
}
