//! Structured event emission with a pluggable sink: pretty or JSON
//! lines on stderr for humans, and/or a JSONL file for machines.
//!
//! Emission is off until [`init`] installs a sink; the disabled fast
//! path is a single relaxed atomic load and no allocation.

use serde::Value;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, RwLock};
use std::time::Instant;

/// How events render on stderr.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LogMode {
    /// No stderr output (a `--events` file may still record).
    #[default]
    Off,
    /// One aligned human-readable line per event.
    Pretty,
    /// One JSON object per line, same schema as the events file.
    Json,
}

impl LogMode {
    /// Parse a `--log` flag value.
    pub fn parse(text: &str) -> Option<LogMode> {
        match text {
            "off" => Some(LogMode::Off),
            "pretty" => Some(LogMode::Pretty),
            "json" => Some(LogMode::Json),
            _ => None,
        }
    }
}

/// Where events go.
#[derive(Debug, Clone, Default)]
pub struct ObsConfig {
    /// Stderr rendering.
    pub log: LogMode,
    /// JSONL file capturing every event, regardless of `log`.
    pub events_path: Option<PathBuf>,
}

struct Sink {
    log: LogMode,
    file: Option<Mutex<BufWriter<File>>>,
}

static SINK: RwLock<Option<Sink>> = RwLock::new(None);
static ENABLED: AtomicBool = AtomicBool::new(false);
static SEQ: AtomicU64 = AtomicU64::new(0);

/// Process start reference for event timestamps. Shared with
/// [`crate::timeline`] so trace timestamps line up with event `ts_s`.
pub(crate) fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Install (or replace) the event sink. Emission is enabled when
/// either stderr logging or an events file is requested.
pub fn init(config: ObsConfig) -> io::Result<()> {
    let file = match &config.events_path {
        Some(path) => Some(Mutex::new(BufWriter::new(File::create(path)?))),
        None => None,
    };
    epoch();
    let enabled = config.log != LogMode::Off || file.is_some();
    *SINK
        .write()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(Sink {
        log: config.log,
        file,
    });
    ENABLED.store(enabled, Ordering::Release);
    Ok(())
}

/// True when events are being recorded anywhere. The hot-path guard.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Flush any buffered events-file output. Call before process exit and
/// before handing an events file to a reader.
pub fn flush() -> io::Result<()> {
    if let Some(sink) = SINK
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .as_ref()
    {
        if let Some(file) = &sink.file {
            file.lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .flush()?;
        }
    }
    Ok(())
}

/// A value that can appear in an event field.
pub trait IntoFieldValue {
    /// Convert into the event data tree.
    fn into_field_value(self) -> Value;
}

macro_rules! impl_into_field {
    ($($t:ty => $variant:ident as $as:ty),* $(,)?) => {$(
        impl IntoFieldValue for $t {
            fn into_field_value(self) -> Value {
                Value::$variant(self as $as)
            }
        }
    )*};
}

impl_into_field! {
    u16 => UInt as u64,
    u32 => UInt as u64,
    u64 => UInt as u64,
    usize => UInt as u64,
    i32 => Int as i64,
    i64 => Int as i64,
}

impl IntoFieldValue for f64 {
    fn into_field_value(self) -> Value {
        if self.is_finite() {
            Value::Float(self)
        } else {
            Value::Null
        }
    }
}

impl IntoFieldValue for bool {
    fn into_field_value(self) -> Value {
        Value::Bool(self)
    }
}

impl IntoFieldValue for &str {
    fn into_field_value(self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl IntoFieldValue for String {
    fn into_field_value(self) -> Value {
        Value::Str(self)
    }
}

/// In-flight event; `None` inside means emission is disabled and every
/// builder call is a no-op.
#[must_use = "call .emit() to record the event"]
pub struct EventBuilder {
    inner: Option<EventData>,
}

struct EventData {
    name: &'static str,
    fields: Vec<(&'static str, Value)>,
}

/// Start building a named event. Free when emission is disabled.
pub fn event(name: &'static str) -> EventBuilder {
    EventBuilder {
        inner: is_enabled().then(|| EventData {
            name,
            fields: Vec::new(),
        }),
    }
}

impl EventBuilder {
    /// Attach one key/value field.
    pub fn field(mut self, key: &'static str, value: impl IntoFieldValue) -> Self {
        if let Some(data) = &mut self.inner {
            data.fields.push((key, value.into_field_value()));
        }
        self
    }

    /// Record the event in every active sink.
    pub fn emit(self) {
        if let Some(data) = self.inner {
            deliver(data);
        }
    }
}

/// Render a field value for the pretty sink.
fn pretty_value(value: &Value) -> String {
    match value {
        Value::Str(s) => s.clone(),
        other => serde_json::to_string(other).unwrap_or_else(|_| "?".to_owned()),
    }
}

fn deliver(data: EventData) {
    let span = crate::span::current_path();
    let guard = SINK
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let Some(sink) = guard.as_ref() else {
        return;
    };
    // One emitter at a time, so sink order always matches `seq` order.
    static DELIVER: Mutex<()> = Mutex::new(());
    let _serialized = DELIVER
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed) + 1;
    let ts_s = epoch().elapsed().as_secs_f64();
    let needs_json = sink.log == LogMode::Json || sink.file.is_some();
    let json = needs_json.then(|| {
        let envelope = Value::Object(vec![
            ("seq".to_owned(), Value::UInt(seq)),
            ("ts_s".to_owned(), Value::Float(ts_s)),
            ("name".to_owned(), Value::Str(data.name.to_owned())),
            (
                "span".to_owned(),
                span.clone().map_or(Value::Null, Value::Str),
            ),
            (
                "fields".to_owned(),
                Value::Object(
                    data.fields
                        .iter()
                        .map(|(k, v)| ((*k).to_owned(), v.clone()))
                        .collect(),
                ),
            ),
        ]);
        // An unserializable envelope (cannot happen with these value
        // types) degrades to an empty object rather than aborting a run.
        serde_json::to_string(&envelope).unwrap_or_else(|_| "{}".to_owned())
    });
    match sink.log {
        LogMode::Off => {}
        LogMode::Json => {
            if let Some(json) = json.as_deref() {
                eprintln!("{json}");
            }
        }
        LogMode::Pretty => {
            let mut line = format!("[{ts_s:10.6}s] {:<22}", data.name);
            if let Some(span) = &span {
                line.push_str(&format!(" span={span}"));
            }
            for (key, value) in &data.fields {
                line.push_str(&format!(" {key}={}", pretty_value(value)));
            }
            eprintln!("{line}");
        }
    }
    if let (Some(file), Some(json)) = (&sink.file, json.as_deref()) {
        let mut file = file
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // Losing log lines on a full disk is not worth crashing a run.
        let _ = writeln!(file, "{json}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_mode_parses_cli_values() {
        assert_eq!(LogMode::parse("off"), Some(LogMode::Off));
        assert_eq!(LogMode::parse("pretty"), Some(LogMode::Pretty));
        assert_eq!(LogMode::parse("json"), Some(LogMode::Json));
        assert_eq!(LogMode::parse("verbose"), None);
    }

    #[test]
    fn disabled_builder_is_inert() {
        // The global sink may be installed by other tests; this checks
        // only the builder's internal no-op path.
        let builder = EventBuilder { inner: None };
        builder.field("k", 1u64).emit();
    }

    #[test]
    fn field_values_convert() {
        assert_eq!(7u64.into_field_value(), Value::UInt(7));
        assert_eq!((-2i64).into_field_value(), Value::Int(-2));
        assert_eq!(true.into_field_value(), Value::Bool(true));
        assert_eq!(0.5f64.into_field_value(), Value::Float(0.5));
        assert_eq!(f64::NAN.into_field_value(), Value::Null);
        assert_eq!("scan".into_field_value(), Value::Str("scan".into()));
    }
}
