//! Per-worker span timeline: an opt-in recorder that captures
//! `(lane, label, chunk, start, end)` intervals from the `prvm-par`
//! pool and from [`crate::Span`] drops, for rendering as a Chrome
//! trace ([`crate::trace`]).
//!
//! Lanes are trace tracks: lane `0` is the orchestrating thread (the
//! one running the top-level phases); the pool assigns each spawned
//! worker lane `1..=workers` for the duration of one parallel section.
//! Recording is strictly observation-only — it never changes chunk
//! boundaries or stitch order, so the determinism contract
//! (DESIGN.md §10) is untouched; the disabled fast path is a single
//! relaxed atomic load.

use std::cell::Cell;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// One recorded interval on a worker lane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Track the interval belongs to: `0` = orchestrating thread,
    /// `1..` = pool workers.
    pub lane: u32,
    /// What ran: a span path (`bench.graph_build`), or a pool label
    /// (`bench.graph_build/chunk`, `bench.pagerank/worker`).
    pub label: String,
    /// Chunk index for pool chunk intervals; `None` for whole spans
    /// and worker lifetimes.
    pub chunk: Option<u64>,
    /// Start offset from the process epoch, nanoseconds.
    pub start_ns: u64,
    /// Interval length, nanoseconds.
    pub dur_ns: u64,
}

/// Everything captured between [`enable`] and [`disable`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Timeline {
    /// Recorded intervals, in completion order.
    pub records: Vec<SpanRecord>,
    /// Every lane that was entered while recording (even if it ended
    /// up claiming zero chunks), sorted.
    pub lanes: Vec<u32>,
}

impl Timeline {
    /// Lanes `>= 1`, i.e. pool worker tracks.
    pub fn worker_lanes(&self) -> Vec<u32> {
        self.lanes.iter().copied().filter(|&l| l >= 1).collect()
    }
}

#[derive(Default)]
struct State {
    records: Vec<SpanRecord>,
    lanes: BTreeSet<u32>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static STATE: Mutex<Option<State>> = Mutex::new(None);

thread_local! {
    static LANE: Cell<u32> = const { Cell::new(0) };
}

/// True while a recording is in progress. The hot-path guard: pool
/// workers check this once per parallel section.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Start a fresh recording, discarding anything a previous enable left
/// behind.
pub fn enable() {
    let mut guard = STATE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    *guard = Some(State::default());
    ENABLED.store(true, Ordering::Release);
}

/// Stop recording and hand back everything captured since [`enable`].
/// Returns an empty [`Timeline`] when recording was never enabled.
pub fn disable() -> Timeline {
    ENABLED.store(false, Ordering::Release);
    let state = STATE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .take()
        .unwrap_or_default();
    Timeline {
        records: state.records,
        lanes: state.lanes.into_iter().collect(),
    }
}

/// Lane the current thread records onto (`0` unless inside
/// [`enter_lane`]).
pub fn current_lane() -> u32 {
    LANE.with(Cell::get)
}

/// Assigns the current thread to `lane` until the guard drops; the
/// lane is registered in the timeline immediately, so a worker that
/// claims zero chunks still shows up as an (empty) track.
#[must_use = "the lane assignment ends when the guard drops"]
pub struct LaneGuard {
    prev: u32,
}

/// Put the current thread on `lane` for the lifetime of the returned
/// guard. Used by the `prvm-par` pool: each spawned worker takes lane
/// `worker_index + 1`.
pub fn enter_lane(lane: u32) -> LaneGuard {
    let prev = LANE.with(|l| l.replace(lane));
    if is_enabled() {
        let mut guard = STATE
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(state) = guard.as_mut() {
            state.lanes.insert(lane);
        }
    }
    LaneGuard { prev }
}

impl Drop for LaneGuard {
    fn drop(&mut self) {
        LANE.with(|l| l.set(self.prev));
    }
}

/// The sanctioned wall-clock read for timeline instrumentation in
/// result-affecting crates (the D002 lint bans raw `Instant::now()`
/// there). Pairs of stamps feed [`record`]; the stamp itself never
/// influences results — chunk claiming and stitching are identical
/// whether anyone looks at the clock.
#[must_use]
pub fn stamp() -> Instant {
    Instant::now()
}

/// Record one completed interval on the current thread's lane. No-op
/// while recording is disabled. `start`/`end` are wall-clock instants;
/// they are stored as nanosecond offsets from the process epoch (the
/// same origin event `ts_s` uses).
pub fn record(label: &str, chunk: Option<u64>, start: Instant, end: Instant) {
    if !is_enabled() {
        return;
    }
    let epoch = crate::event::epoch();
    let record = SpanRecord {
        lane: current_lane(),
        label: label.to_owned(),
        chunk,
        start_ns: saturating_ns(start.duration_since(epoch)),
        dur_ns: saturating_ns(end.duration_since(start)),
    };
    let mut guard = STATE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(state) = guard.as_mut() {
        state.lanes.insert(record.lane);
        state.records.push(record);
    }
}

fn saturating_ns(duration: std::time::Duration) -> u64 {
    duration.as_nanos().min(u128::from(u64::MAX)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Timeline state is process-global, so tests that enable/disable
    /// it must not interleave (shared with the trace-sink tests).
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        crate::global_registry_test_lock()
    }

    #[test]
    fn disabled_recorder_drops_records() {
        let _guard = lock();
        assert!(!is_enabled());
        let t0 = Instant::now();
        record("ignored", None, t0, Instant::now());
        let timeline = disable();
        assert!(timeline.records.is_empty());
        assert!(timeline.lanes.is_empty());
    }

    #[test]
    fn records_capture_lane_label_and_chunk() {
        let _guard = lock();
        enable();
        let t0 = Instant::now();
        record("phase", None, t0, Instant::now());
        {
            let _lane = enter_lane(3);
            assert_eq!(current_lane(), 3);
            let t1 = Instant::now();
            record("phase/chunk", Some(7), t1, Instant::now());
        }
        assert_eq!(current_lane(), 0, "lane restored after guard drop");
        let timeline = disable();
        assert_eq!(timeline.records.len(), 2);
        assert_eq!(timeline.records[0].lane, 0);
        assert_eq!(timeline.records[0].label, "phase");
        assert_eq!(timeline.records[0].chunk, None);
        assert_eq!(timeline.records[1].lane, 3);
        assert_eq!(timeline.records[1].chunk, Some(7));
        assert_eq!(timeline.lanes, vec![0, 3]);
        assert_eq!(timeline.worker_lanes(), vec![3]);
    }

    #[test]
    fn idle_workers_still_register_their_lane() {
        let _guard = lock();
        enable();
        {
            let _lane = enter_lane(2);
            // Claims no chunks, records nothing.
        }
        let timeline = disable();
        assert!(timeline.records.is_empty());
        assert_eq!(timeline.lanes, vec![2]);
    }

    #[test]
    fn enable_clears_previous_capture() {
        let _guard = lock();
        enable();
        let t0 = Instant::now();
        record("stale", None, t0, Instant::now());
        enable();
        let timeline = disable();
        assert!(timeline.records.is_empty());
    }
}
