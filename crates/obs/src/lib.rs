//! Structured observability for the PageRankVM suite.
//!
//! Three cooperating layers, all safe to leave compiled into hot paths:
//!
//! * **Spans** ([`Span`]) — RAII wall-time phases. `Span::enter("pagerank")`
//!   times a block; nesting builds slash paths (`simulate/scan`). Every
//!   drop feeds the `span.<path>` histogram in the global [`Registry`]
//!   and emits a `span_end` event.
//! * **Metrics** ([`Registry`]) — named counters, gauges, log-scale
//!   latency histograms and numeric series. Always on: recording is a
//!   couple of relaxed atomic ops, and the [`counter!`]/[`gauge!`]
//!   macros cache the name lookup per call site, re-resolving when the
//!   global registry is swapped ([`Registry::install_global`]).
//! * **Events** ([`event()`]) — structured JSON-lines records with a
//!   pluggable sink ([`init`]): pretty or JSON on stderr, and/or a
//!   JSONL file. Off by default; the disabled path is one atomic load.
//! * **Profiling** ([`timeline`], [`trace`]) — opt-in per-worker span
//!   timelines recorded by the `prvm-par` pool, rendered as
//!   `chrome://tracing` / Perfetto trace-event JSON by [`TraceSink`].
//!   With the `prof-alloc` feature, a counting global allocator
//!   additionally reports net/peak heap bytes per top-level span as
//!   `mem.<phase>.*` gauges.
//!
//! [`report`] turns either a recorded event log or a live
//! [`MetricsSnapshot`] back into human-readable phase breakdowns and
//! PageRank convergence summaries.
//!
//! Event envelope schema (one JSON object per line):
//!
//! ```json
//! {"seq":7,"ts_s":0.0123,"name":"pagerank.iteration",
//!  "span":"place/pagerank","fields":{"run":1,"iter":3,"residual":1e-4}}
//! ```

#[cfg(feature = "prof-alloc")]
pub mod alloc;
pub mod event;
pub mod metrics;
pub mod report;
pub mod span;
pub mod timeline;
pub mod trace;

pub use event::{event, flush, init, is_enabled, EventBuilder, LogMode, ObsConfig};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, PhaseSummary, Registry, Series,
};
pub use report::{render_metrics, render_report, summarize_events, ReportSummary};
pub use span::Span;
pub use timeline::Timeline;
pub use trace::{validate_chrome_trace, TraceSink, TraceStats};

/// Bump a named counter in the global [`Registry`], caching the handle
/// per call site. The cache is keyed on [`Registry::generation`], so a
/// test that swaps the global registry ([`Registry::install_global`])
/// sees subsequent increments land in the new registry rather than a
/// stale handle on the old one. The generation is read **before**
/// resolving the global: a concurrent swap costs at most one wasted
/// re-resolve, never a permanently stale cache.
///
/// ```
/// prvm_obs::counter!("placer.permutations_evaluated", 12);
/// prvm_obs::counter!("placer.evictions"); // increment by one
/// ```
#[macro_export]
macro_rules! counter {
    ($name:expr) => {
        $crate::counter!($name, 1u64)
    };
    ($name:expr, $delta:expr) => {{
        static CACHED: ::std::sync::Mutex<
            ::std::option::Option<(u64, ::std::sync::Arc<$crate::Counter>)>,
        > = ::std::sync::Mutex::new(::std::option::Option::None);
        let generation = $crate::Registry::generation();
        let mut cached = CACHED
            .lock()
            .unwrap_or_else(::std::sync::PoisonError::into_inner);
        match cached.as_ref() {
            ::std::option::Option::Some((cached_generation, handle))
                if *cached_generation == generation =>
            {
                handle.add($delta as u64);
            }
            _ => {
                let handle = $crate::Registry::global().counter($name);
                handle.add($delta as u64);
                *cached = ::std::option::Option::Some((generation, handle));
            }
        }
    }};
}

/// Set a named gauge in the global [`Registry`], caching the handle
/// per call site. Generation-aware exactly like [`counter!`]: the
/// handle re-resolves after the global registry is swapped.
///
/// ```
/// prvm_obs::gauge!("sim.mean_utilization", 0.62);
/// ```
#[macro_export]
macro_rules! gauge {
    ($name:expr, $value:expr) => {{
        static CACHED: ::std::sync::Mutex<
            ::std::option::Option<(u64, ::std::sync::Arc<$crate::Gauge>)>,
        > = ::std::sync::Mutex::new(::std::option::Option::None);
        let generation = $crate::Registry::generation();
        let mut cached = CACHED
            .lock()
            .unwrap_or_else(::std::sync::PoisonError::into_inner);
        match cached.as_ref() {
            ::std::option::Option::Some((cached_generation, handle))
                if *cached_generation == generation =>
            {
                handle.set($value as f64);
            }
            _ => {
                let handle = $crate::Registry::global().gauge($name);
                handle.set($value as f64);
                *cached = ::std::option::Option::Some((generation, handle));
            }
        }
    }};
}

/// Record a value into a named histogram in the global [`Registry`],
/// caching the handle per call site. Generation-aware exactly like
/// [`counter!`]: the handle re-resolves after the global registry is
/// swapped.
///
/// ```
/// prvm_obs::histogram!("serve.request_latency_us", 1250u64);
/// ```
#[macro_export]
macro_rules! histogram {
    ($name:expr, $value:expr) => {{
        static CACHED: ::std::sync::Mutex<
            ::std::option::Option<(u64, ::std::sync::Arc<$crate::Histogram>)>,
        > = ::std::sync::Mutex::new(::std::option::Option::None);
        let generation = $crate::Registry::generation();
        let mut cached = CACHED
            .lock()
            .unwrap_or_else(::std::sync::PoisonError::into_inner);
        match cached.as_ref() {
            ::std::option::Option::Some((cached_generation, handle))
                if *cached_generation == generation =>
            {
                handle.record($value as u64);
            }
            _ => {
                let handle = $crate::Registry::global().histogram($name);
                handle.record($value as u64);
                *cached = ::std::option::Option::Some((generation, handle));
            }
        }
    }};
}

/// Serializes unit tests that read or swap the global registry, so a
/// swap in one test cannot redirect another test's recordings.
#[cfg(test)]
pub(crate) fn global_registry_test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    #[test]
    fn macros_record_into_the_global_registry() {
        let _guard = crate::global_registry_test_lock();
        counter!("obs_lib_test.counter", 2);
        counter!("obs_lib_test.counter", 2);
        gauge!("obs_lib_test.gauge", 1.25);
        histogram!("obs_lib_test.histogram", 10u64);
        histogram!("obs_lib_test.histogram", 1000u64);
        assert_eq!(
            crate::Registry::global()
                .counter("obs_lib_test.counter")
                .get(),
            4
        );
        assert_eq!(
            crate::Registry::global().gauge("obs_lib_test.gauge").get(),
            1.25
        );
        let hist = crate::Registry::global().histogram("obs_lib_test.histogram");
        assert_eq!(hist.count(), 2);
        assert_eq!(hist.sum(), 1010);
    }

    /// Regression test for the stale-cache bug: a `counter!`/`gauge!`
    /// call site primed against one global registry must follow a
    /// [`crate::Registry::install_global`] swap instead of recording
    /// into the displaced registry forever.
    #[test]
    fn macro_caches_follow_global_registry_swaps() {
        let _guard = crate::global_registry_test_lock();
        // Single call sites invoked across the swap, so each macro's
        // per-site static cache is primed on the old registry.
        let bump = |delta: u64| counter!("obs_lib_swap.counter", delta);
        let level = |value: f64| gauge!("obs_lib_swap.gauge", value);
        bump(1);
        level(1.0);
        let old = crate::Registry::global();
        let fresh = crate::Registry::replace_global();
        bump(5);
        level(2.5);
        assert_eq!(
            fresh.counter("obs_lib_swap.counter").get(),
            5,
            "cached counter handle kept recording into the old registry"
        );
        assert_eq!(
            fresh.gauge("obs_lib_swap.gauge").get(),
            2.5,
            "cached gauge handle kept recording into the old registry"
        );
        assert_eq!(old.counter("obs_lib_swap.counter").get(), 1);
        assert_eq!(old.gauge("obs_lib_swap.gauge").get(), 1.0);
        // Put the original registry back for the other tests.
        crate::Registry::install_global(old);
    }
}
