//! Structured observability for the PageRankVM suite.
//!
//! Three cooperating layers, all safe to leave compiled into hot paths:
//!
//! * **Spans** ([`Span`]) — RAII wall-time phases. `Span::enter("pagerank")`
//!   times a block; nesting builds slash paths (`simulate/scan`). Every
//!   drop feeds the `span.<path>` histogram in the global [`Registry`]
//!   and emits a `span_end` event.
//! * **Metrics** ([`Registry`]) — named counters, gauges, log-scale
//!   latency histograms and numeric series. Always on: recording is a
//!   couple of relaxed atomic ops, and the [`counter!`]/[`gauge!`]
//!   macros cache the name lookup per call site.
//! * **Events** ([`event()`]) — structured JSON-lines records with a
//!   pluggable sink ([`init`]): pretty or JSON on stderr, and/or a
//!   JSONL file. Off by default; the disabled path is one atomic load.
//!
//! [`report`] turns either a recorded event log or a live
//! [`MetricsSnapshot`] back into human-readable phase breakdowns and
//! PageRank convergence summaries.
//!
//! Event envelope schema (one JSON object per line):
//!
//! ```json
//! {"seq":7,"ts_s":0.0123,"name":"pagerank.iteration",
//!  "span":"place/pagerank","fields":{"run":1,"iter":3,"residual":1e-4}}
//! ```

pub mod event;
pub mod metrics;
pub mod report;
pub mod span;

pub use event::{event, flush, init, is_enabled, EventBuilder, LogMode, ObsConfig};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, PhaseSummary, Registry, Series,
};
pub use report::{render_metrics, render_report, summarize_events, ReportSummary};
pub use span::Span;

/// Bump a named counter in the global [`Registry`], caching the handle
/// per call site.
///
/// ```
/// prvm_obs::counter!("placer.permutations_evaluated", 12);
/// prvm_obs::counter!("placer.evictions"); // increment by one
/// ```
#[macro_export]
macro_rules! counter {
    ($name:expr) => {
        $crate::counter!($name, 1u64)
    };
    ($name:expr, $delta:expr) => {{
        static CACHED: ::std::sync::OnceLock<::std::sync::Arc<$crate::Counter>> =
            ::std::sync::OnceLock::new();
        CACHED
            .get_or_init(|| $crate::Registry::global().counter($name))
            .add($delta as u64);
    }};
}

/// Set a named gauge in the global [`Registry`], caching the handle
/// per call site.
///
/// ```
/// prvm_obs::gauge!("sim.mean_utilization", 0.62);
/// ```
#[macro_export]
macro_rules! gauge {
    ($name:expr, $value:expr) => {{
        static CACHED: ::std::sync::OnceLock<::std::sync::Arc<$crate::Gauge>> =
            ::std::sync::OnceLock::new();
        CACHED
            .get_or_init(|| $crate::Registry::global().gauge($name))
            .set($value as f64);
    }};
}

#[cfg(test)]
mod tests {
    #[test]
    fn macros_record_into_the_global_registry() {
        counter!("obs_lib_test.counter", 2);
        counter!("obs_lib_test.counter", 2);
        gauge!("obs_lib_test.gauge", 1.25);
        assert_eq!(
            crate::Registry::global()
                .counter("obs_lib_test.counter")
                .get(),
            4
        );
        assert_eq!(
            crate::Registry::global().gauge("obs_lib_test.gauge").get(),
            1.25
        );
    }
}
