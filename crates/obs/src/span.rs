//! RAII timing spans. `Span::enter("pagerank")` times a phase; nesting
//! builds slash-joined paths (`simulate/scan`), and each drop records
//! the duration into the global registry's `span.<path>` histogram and
//! emits a `span_end` event.
//!
//! When the [`crate::timeline`] recorder is enabled, every span also
//! lands as an interval on the current thread's lane, so top-level
//! phases show up as bars in the Chrome trace alongside the per-worker
//! chunk intervals recorded by the `prvm-par` pool. With the
//! `prof-alloc` feature, **root** spans (no enclosing span on the
//! thread) additionally measure heap traffic while they are open and
//! report it as `mem.<path>.net_bytes` / `mem.<path>.peak_bytes`
//! gauges.

use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Slash-joined path of the spans currently open on this thread, if
/// any. Stamped onto events as ambient context.
pub fn current_path() -> Option<String> {
    STACK.with(|stack| {
        let stack = stack.borrow();
        if stack.is_empty() {
            None
        } else {
            Some(stack.join("/"))
        }
    })
}

/// An open timing span; close it by dropping. Spans on one thread must
/// drop in reverse entry order (the natural RAII shape).
#[derive(Debug)]
pub struct Span {
    path: String,
    start: Instant,
    #[cfg(feature = "prof-alloc")]
    mem: Option<crate::alloc::MemoryWindow>,
}

impl Span {
    /// Open a span named `name` nested under any currently open spans.
    pub fn enter(name: &'static str) -> Span {
        let (path, is_root) = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let is_root = stack.is_empty();
            stack.push(name);
            (stack.join("/"), is_root)
        });
        #[cfg(not(feature = "prof-alloc"))]
        let _ = is_root;
        Span {
            path,
            start: Instant::now(),
            #[cfg(feature = "prof-alloc")]
            mem: is_root.then(crate::alloc::MemoryWindow::start),
        }
    }

    /// Full slash-joined path of this span.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Run `f` under a span named `name` and return its result together
    /// with the measured wall-clock duration. The duration is also
    /// recorded in the `span.<path>` histogram as usual — this helper
    /// just hands the caller the same number the registry sees, which
    /// is what perf harnesses want (`pagerankvm bench` stages).
    pub fn timed<R>(name: &'static str, f: impl FnOnce() -> R) -> (R, std::time::Duration) {
        let span = Span::enter(name);
        let start = span.start;
        let result = f();
        drop(span);
        (result, start.elapsed())
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let end = Instant::now();
        let duration = end.duration_since(self.start);
        STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
        crate::Registry::global()
            .histogram(&format!(
                "{}{}",
                crate::metrics::SPAN_METRIC_PREFIX,
                self.path
            ))
            .record_duration(duration);
        if crate::timeline::is_enabled() {
            crate::timeline::record(&self.path, None, self.start, end);
        }
        #[cfg(feature = "prof-alloc")]
        if let Some(window) = self.mem.take() {
            let delta = window.finish();
            let registry = crate::Registry::global();
            registry
                .gauge(&format!("mem.{}.net_bytes", self.path))
                .set(delta.net_bytes as f64);
            registry
                .gauge(&format!("mem.{}.peak_bytes", self.path))
                .set(delta.peak_bytes as f64);
        }
        crate::event::event("span_end")
            .field("span", self.path.as_str())
            .field(
                "duration_ns",
                duration.as_nanos().min(u128::from(u64::MAX)) as u64,
            )
            .emit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_builds_slash_paths() {
        assert_eq!(current_path(), None);
        let outer = Span::enter("simulate");
        assert_eq!(outer.path(), "simulate");
        {
            let inner = Span::enter("scan");
            assert_eq!(inner.path(), "simulate/scan");
            assert_eq!(current_path().as_deref(), Some("simulate/scan"));
        }
        assert_eq!(current_path().as_deref(), Some("simulate"));
        drop(outer);
        assert_eq!(current_path(), None);
    }

    #[test]
    fn dropping_records_into_global_registry() {
        let _guard = crate::global_registry_test_lock();
        {
            let _span = Span::enter("obs_span_test_phase");
        }
        let h = crate::Registry::global().histogram("span.obs_span_test_phase");
        assert!(h.count() >= 1);
    }

    #[test]
    fn timed_returns_result_and_duration_and_records() {
        let _guard = crate::global_registry_test_lock();
        let (value, duration) = Span::timed("obs_span_timed_phase", || 6 * 7);
        assert_eq!(value, 42);
        assert!(duration.as_nanos() > 0);
        let h = crate::Registry::global().histogram("span.obs_span_timed_phase");
        assert!(h.count() >= 1);
        assert_eq!(current_path(), None, "span closed on return");
    }

    #[cfg(feature = "prof-alloc")]
    #[test]
    fn root_spans_report_memory_gauges() {
        let _guard = crate::global_registry_test_lock();
        {
            let _span = Span::enter("obs_span_mem_phase");
            // Allocate something observable while the root span is open.
            let block = vec![0u8; 1 << 16];
            std::hint::black_box(&block);
        }
        let peak = crate::Registry::global()
            .gauge("mem.obs_span_mem_phase.peak_bytes")
            .get();
        // Other test threads may free concurrently; half the block is
        // a safe lower bound.
        assert!(
            peak >= ((1 << 16) / 2) as f64,
            "peak gauge {peak} missed a 64 KiB allocation"
        );
    }
}
