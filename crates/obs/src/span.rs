//! RAII timing spans. `Span::enter("pagerank")` times a phase; nesting
//! builds slash-joined paths (`simulate/scan`), and each drop records
//! the duration into the global registry's `span.<path>` histogram and
//! emits a `span_end` event.

use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Slash-joined path of the spans currently open on this thread, if
/// any. Stamped onto events as ambient context.
pub fn current_path() -> Option<String> {
    STACK.with(|stack| {
        let stack = stack.borrow();
        if stack.is_empty() {
            None
        } else {
            Some(stack.join("/"))
        }
    })
}

/// An open timing span; close it by dropping. Spans on one thread must
/// drop in reverse entry order (the natural RAII shape).
#[derive(Debug)]
pub struct Span {
    path: String,
    start: Instant,
}

impl Span {
    /// Open a span named `name` nested under any currently open spans.
    pub fn enter(name: &'static str) -> Span {
        let path = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            stack.push(name);
            stack.join("/")
        });
        Span {
            path,
            start: Instant::now(),
        }
    }

    /// Full slash-joined path of this span.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Run `f` under a span named `name` and return its result together
    /// with the measured wall-clock duration. The duration is also
    /// recorded in the `span.<path>` histogram as usual — this helper
    /// just hands the caller the same number the registry sees, which
    /// is what perf harnesses want (`pagerankvm bench` stages).
    pub fn timed<R>(name: &'static str, f: impl FnOnce() -> R) -> (R, std::time::Duration) {
        let span = Span::enter(name);
        let start = span.start;
        let result = f();
        drop(span);
        (result, start.elapsed())
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let duration = self.start.elapsed();
        STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
        crate::Registry::global()
            .histogram(&format!(
                "{}{}",
                crate::metrics::SPAN_METRIC_PREFIX,
                self.path
            ))
            .record_duration(duration);
        crate::event::event("span_end")
            .field("span", self.path.as_str())
            .field(
                "duration_ns",
                duration.as_nanos().min(u128::from(u64::MAX)) as u64,
            )
            .emit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_builds_slash_paths() {
        assert_eq!(current_path(), None);
        let outer = Span::enter("simulate");
        assert_eq!(outer.path(), "simulate");
        {
            let inner = Span::enter("scan");
            assert_eq!(inner.path(), "simulate/scan");
            assert_eq!(current_path().as_deref(), Some("simulate/scan"));
        }
        assert_eq!(current_path().as_deref(), Some("simulate"));
        drop(outer);
        assert_eq!(current_path(), None);
    }

    #[test]
    fn dropping_records_into_global_registry() {
        {
            let _span = Span::enter("obs_span_test_phase");
        }
        let h = crate::Registry::global().histogram("span.obs_span_test_phase");
        assert!(h.count() >= 1);
    }

    #[test]
    fn timed_returns_result_and_duration_and_records() {
        let (value, duration) = Span::timed("obs_span_timed_phase", || 6 * 7);
        assert_eq!(value, 42);
        assert!(duration.as_nanos() > 0);
        let h = crate::Registry::global().histogram("span.obs_span_timed_phase");
        assert!(h.count() >= 1);
        assert_eq!(current_path(), None, "span closed on return");
    }
}
