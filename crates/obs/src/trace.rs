//! Chrome trace-event export for [`crate::timeline`] recordings.
//!
//! [`chrome_trace`] renders a [`Timeline`] as the JSON Object Format
//! understood by `chrome://tracing` and Perfetto: one `"X"` (complete)
//! event per recorded interval with microsecond `ts`/`dur`, plus `"M"`
//! metadata events naming the process and one thread per lane (lane 0
//! is `main`, lane `n >= 1` is `worker-n`). [`TraceSink`] wraps the
//! enable → run → disable → render → validate → write lifecycle behind
//! `--trace FILE`, and [`validate_chrome_trace`] is the schema check
//! both the tests and `pagerankvm bench --check-trace` use.

use crate::timeline::{self, Timeline};
use serde::Value;
use std::path::PathBuf;

/// Trace process id; there is only one process in a run.
const PID: u64 = 1;

fn object(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn lane_name(lane: u32) -> String {
    if lane == 0 {
        "main".to_owned()
    } else {
        format!("worker-{lane}")
    }
}

/// Render a timeline as a trace-event JSON document
/// (`{"traceEvents": [...]}`).
pub fn chrome_trace(timeline: &Timeline) -> Value {
    let mut events = Vec::with_capacity(timeline.records.len() + timeline.lanes.len() + 1);
    events.push(object(vec![
        ("name", Value::Str("process_name".to_owned())),
        ("ph", Value::Str("M".to_owned())),
        ("pid", Value::UInt(PID)),
        (
            "args",
            object(vec![("name", Value::Str("pagerankvm".to_owned()))]),
        ),
    ]));
    for &lane in &timeline.lanes {
        events.push(object(vec![
            ("name", Value::Str("thread_name".to_owned())),
            ("ph", Value::Str("M".to_owned())),
            ("pid", Value::UInt(PID)),
            ("tid", Value::UInt(u64::from(lane))),
            ("args", object(vec![("name", Value::Str(lane_name(lane)))])),
        ]));
    }
    for record in &timeline.records {
        let mut fields = vec![
            ("name", Value::Str(record.label.clone())),
            ("ph", Value::Str("X".to_owned())),
            ("ts", Value::Float(record.start_ns as f64 / 1e3)),
            ("dur", Value::Float(record.dur_ns as f64 / 1e3)),
            ("pid", Value::UInt(PID)),
            ("tid", Value::UInt(u64::from(record.lane))),
        ];
        if let Some(chunk) = record.chunk {
            fields.push(("args", object(vec![("chunk", Value::UInt(chunk))])));
        }
        events.push(object(fields));
    }
    object(vec![("traceEvents", Value::Array(events))])
}

/// What a validated trace contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStats {
    /// Number of `"X"` (complete) interval events.
    pub intervals: usize,
    /// Distinct worker tracks (`tid >= 1`) that recorded at least one
    /// interval.
    pub worker_tracks: usize,
}

fn field_str<'v>(event: &'v Value, name: &str, at: usize) -> Result<&'v str, String> {
    match event.field(name) {
        Ok(Value::Str(s)) => Ok(s),
        _ => Err(format!("traceEvents[{at}]: missing string field {name:?}")),
    }
}

fn field_u64(event: &Value, name: &str, at: usize) -> Result<u64, String> {
    event
        .field(name)
        .and_then(Value::as_u64)
        .map_err(|_| format!("traceEvents[{at}]: missing integer field {name:?}"))
}

fn field_duration_us(event: &Value, name: &str, at: usize) -> Result<f64, String> {
    let value = event
        .field(name)
        .and_then(Value::as_f64)
        .map_err(|_| format!("traceEvents[{at}]: missing numeric field {name:?}"))?;
    if value.is_finite() && value >= 0.0 {
        Ok(value)
    } else {
        Err(format!(
            "traceEvents[{at}]: field {name:?} must be finite and non-negative, got {value}"
        ))
    }
}

/// Check that `trace` is a structurally valid trace-event document:
/// a `traceEvents` array of objects, each either an `"X"` complete
/// event (string `name`, integer `pid`/`tid`, finite non-negative
/// microsecond `ts`/`dur`) or an `"M"` metadata event (string `name`,
/// `args.name`). Returns interval/track counts on success.
pub fn validate_chrome_trace(trace: &Value) -> Result<TraceStats, String> {
    let events = match trace.field("traceEvents") {
        Ok(Value::Array(events)) => events,
        _ => return Err("top level must be an object with a traceEvents array".to_owned()),
    };
    let mut intervals = 0usize;
    let mut worker_tracks = std::collections::BTreeSet::new();
    for (at, event) in events.iter().enumerate() {
        if !matches!(event, Value::Object(_)) {
            return Err(format!("traceEvents[{at}]: not an object"));
        }
        let name = field_str(event, "name", at)?;
        if name.is_empty() {
            return Err(format!("traceEvents[{at}]: empty event name"));
        }
        field_u64(event, "pid", at)?;
        match field_str(event, "ph", at)? {
            "X" => {
                field_duration_us(event, "ts", at)?;
                field_duration_us(event, "dur", at)?;
                let tid = field_u64(event, "tid", at)?;
                intervals += 1;
                if tid >= 1 {
                    worker_tracks.insert(tid);
                }
            }
            "M" => {
                let args = event
                    .field("args")
                    .map_err(|_| format!("traceEvents[{at}]: metadata event without args"))?;
                field_str(args, "name", at)?;
            }
            other => {
                return Err(format!(
                    "traceEvents[{at}]: unsupported phase {other:?} (expected \"X\" or \"M\")"
                ));
            }
        }
    }
    Ok(TraceStats {
        intervals,
        worker_tracks: worker_tracks.len(),
    })
}

/// RAII-ish profiling capture: [`TraceSink::start`] turns the timeline
/// recorder on; [`TraceSink::finish`] turns it off, renders the
/// capture as trace-event JSON, validates it, and writes it to the
/// path given at start.
#[must_use = "call .finish() to write the trace file"]
#[derive(Debug)]
pub struct TraceSink {
    path: PathBuf,
}

impl TraceSink {
    /// Begin recording; the trace will be written to `path` by
    /// [`TraceSink::finish`].
    pub fn start(path: impl Into<PathBuf>) -> TraceSink {
        timeline::enable();
        TraceSink { path: path.into() }
    }

    /// Stop recording, render, schema-validate, and write the trace.
    pub fn finish(self) -> Result<TraceStats, String> {
        let timeline = timeline::disable();
        let trace = chrome_trace(&timeline);
        let stats = validate_chrome_trace(&trace)?;
        let json =
            serde_json::to_string(&trace).map_err(|err| format!("encoding trace: {err:?}"))?;
        std::fs::write(&self.path, json)
            .map_err(|err| format!("writing {}: {err}", self.path.display()))?;
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::SpanRecord;

    fn sample_timeline() -> Timeline {
        Timeline {
            records: vec![
                SpanRecord {
                    lane: 0,
                    label: "bench.graph_build".to_owned(),
                    chunk: None,
                    start_ns: 1_000,
                    dur_ns: 9_000,
                },
                SpanRecord {
                    lane: 1,
                    label: "bench.graph_build/chunk".to_owned(),
                    chunk: Some(0),
                    start_ns: 2_000,
                    dur_ns: 3_000,
                },
                SpanRecord {
                    lane: 2,
                    label: "bench.graph_build/chunk".to_owned(),
                    chunk: Some(1),
                    start_ns: 2_500,
                    dur_ns: 3_500,
                },
            ],
            lanes: vec![0, 1, 2],
        }
    }

    #[test]
    fn rendered_trace_validates_with_expected_counts() {
        let trace = chrome_trace(&sample_timeline());
        let stats = validate_chrome_trace(&trace).expect("valid trace");
        assert_eq!(stats.intervals, 3);
        assert_eq!(stats.worker_tracks, 2);
    }

    #[test]
    fn trace_json_round_trips_through_text() {
        let trace = chrome_trace(&sample_timeline());
        let text = serde_json::to_string(&trace).expect("encode");
        let parsed: Value = serde_json::from_str(&text).expect("parse");
        let stats = validate_chrome_trace(&parsed).expect("valid after round trip");
        assert_eq!(stats.intervals, 3);
        assert_eq!(stats.worker_tracks, 2);
    }

    #[test]
    fn chunk_indexes_land_in_args() {
        let trace = chrome_trace(&sample_timeline());
        let Ok(Value::Array(events)) = trace.field("traceEvents") else {
            panic!("no traceEvents array");
        };
        let chunked: Vec<u64> = events
            .iter()
            .filter_map(|e| e.field("args").ok())
            .filter_map(|args| args.field("chunk").ok())
            .filter_map(|chunk| chunk.as_u64().ok())
            .collect();
        assert_eq!(chunked, vec![0, 1]);
    }

    #[test]
    fn validation_rejects_malformed_documents() {
        // Not an object at top level.
        assert!(validate_chrome_trace(&Value::Array(vec![])).is_err());
        // An X event missing its duration.
        let broken = object(vec![(
            "traceEvents",
            Value::Array(vec![object(vec![
                ("name", Value::Str("x".to_owned())),
                ("ph", Value::Str("X".to_owned())),
                ("ts", Value::Float(1.0)),
                ("pid", Value::UInt(1)),
                ("tid", Value::UInt(1)),
            ])]),
        )]);
        let err = validate_chrome_trace(&broken).expect_err("missing dur must fail");
        assert!(err.contains("dur"), "unexpected error: {err}");
        // An unsupported phase letter.
        let bad_phase = object(vec![(
            "traceEvents",
            Value::Array(vec![object(vec![
                ("name", Value::Str("x".to_owned())),
                ("ph", Value::Str("B".to_owned())),
                ("pid", Value::UInt(1)),
            ])]),
        )]);
        assert!(validate_chrome_trace(&bad_phase).is_err());
        // A negative timestamp.
        let negative = object(vec![(
            "traceEvents",
            Value::Array(vec![object(vec![
                ("name", Value::Str("x".to_owned())),
                ("ph", Value::Str("X".to_owned())),
                ("ts", Value::Float(-1.0)),
                ("dur", Value::Float(1.0)),
                ("pid", Value::UInt(1)),
                ("tid", Value::UInt(1)),
            ])]),
        )]);
        assert!(validate_chrome_trace(&negative).is_err());
    }

    #[test]
    fn sink_writes_a_validated_file() {
        // The sink drives the process-global timeline recorder.
        let _guard = crate::global_registry_test_lock();
        let dir = std::env::temp_dir().join("prvm_obs_trace_sink_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("trace.json");
        let sink = TraceSink::start(&path);
        let t0 = std::time::Instant::now();
        {
            let _lane = timeline::enter_lane(1);
            timeline::record("test/chunk", Some(0), t0, std::time::Instant::now());
        }
        {
            let _lane = timeline::enter_lane(2);
            timeline::record("test/chunk", Some(1), t0, std::time::Instant::now());
        }
        let stats = sink.finish().expect("finish");
        assert_eq!(stats.worker_tracks, 2);
        let text = std::fs::read_to_string(&path).expect("read back");
        let parsed: Value = serde_json::from_str(&text).expect("parse");
        validate_chrome_trace(&parsed).expect("file contents validate");
        std::fs::remove_file(&path).ok();
    }
}
