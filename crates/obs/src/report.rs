//! Run-report rendering: summarize a recorded JSONL event log (the
//! `pagerankvm report` subcommand) or a live [`MetricsSnapshot`] into
//! per-phase wall-time breakdowns and convergence diagnostics.

use crate::metrics::MetricsSnapshot;
use serde::{Deserialize, Serialize, Value};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::BufRead;

/// Aggregated wall time for one span path, from `span_end` events.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseAgg {
    pub name: String,
    pub count: u64,
    pub total_ns: u64,
}

/// Convergence record of one PageRank invocation, from
/// `pagerank.iteration` / `pagerank.done` events.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PagerankRun {
    pub run: u64,
    pub iterations: u64,
    /// False both for max-iters runs and for logs truncated before the
    /// `pagerank.done` event.
    pub converged: bool,
    pub final_residual: f64,
}

/// Everything `pagerankvm report` reconstructs from an event log.
///
/// Serializes to JSON for `pagerankvm report --format json`, so other
/// tooling can consume the breakdown without re-parsing the event log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReportSummary {
    /// Total events in the log.
    pub events: u64,
    /// Wall time by span path, largest total first.
    pub phases: Vec<PhaseAgg>,
    /// PageRank invocations in run order.
    pub pagerank: Vec<PagerankRun>,
    /// Events per name, alphabetical.
    pub event_counts: Vec<(String, u64)>,
}

fn as_bool(value: &Value) -> Option<bool> {
    match value {
        Value::Bool(b) => Some(*b),
        _ => None,
    }
}

/// Reconstruct a [`ReportSummary`] from a JSONL event log.
///
/// # Errors
///
/// Fails on I/O errors or lines that are not valid event objects
/// (reported with their line number); blank lines are skipped.
pub fn summarize_events(reader: impl BufRead) -> Result<ReportSummary, String> {
    let mut events = 0u64;
    let mut event_counts: BTreeMap<String, u64> = BTreeMap::new();
    let mut phases: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    // run -> (iterations, converged, final residual)
    let mut runs: BTreeMap<u64, (u64, bool, f64)> = BTreeMap::new();

    for (idx, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| format!("line {}: read error: {e}", idx + 1))?;
        if line.trim().is_empty() {
            continue;
        }
        let entry: Value = serde_json::from_str(&line)
            .map_err(|e| format!("line {}: invalid JSON: {e}", idx + 1))?;
        let name = match entry.field("name") {
            Ok(Value::Str(name)) => name.clone(),
            _ => return Err(format!("line {}: event has no name", idx + 1)),
        };
        events += 1;
        *event_counts.entry(name.clone()).or_insert(0) += 1;
        let null = Value::Null;
        let fields = entry.field("fields").unwrap_or(&null);
        match name.as_str() {
            "span_end" => {
                let span = match fields.field("span") {
                    Ok(Value::Str(span)) => span.clone(),
                    _ => continue,
                };
                let ns = fields
                    .field("duration_ns")
                    .and_then(Value::as_u64)
                    .unwrap_or(0);
                let slot = phases.entry(span).or_insert((0, 0));
                slot.0 += 1;
                slot.1 = slot.1.saturating_add(ns);
            }
            "pagerank.iteration" => {
                let run = fields.field("run").and_then(Value::as_u64).unwrap_or(0);
                let iter = fields.field("iter").and_then(Value::as_u64).unwrap_or(0);
                let residual = fields
                    .field("residual")
                    .and_then(Value::as_f64)
                    .unwrap_or(f64::NAN);
                let slot = runs.entry(run).or_insert((0, false, f64::NAN));
                slot.0 = slot.0.max(iter);
                slot.2 = residual;
            }
            "pagerank.done" => {
                let run = fields.field("run").and_then(Value::as_u64).unwrap_or(0);
                let slot = runs.entry(run).or_insert((0, false, f64::NAN));
                if let Ok(n) = fields.field("iterations").and_then(Value::as_u64) {
                    slot.0 = n;
                }
                slot.1 = fields
                    .field("converged")
                    .ok()
                    .and_then(as_bool)
                    .unwrap_or(false);
                if let Ok(r) = fields.field("residual").and_then(Value::as_f64) {
                    slot.2 = r;
                }
            }
            _ => {}
        }
    }

    let mut phases: Vec<PhaseAgg> = phases
        .into_iter()
        .map(|(name, (count, total_ns))| PhaseAgg {
            name,
            count,
            total_ns,
        })
        .collect();
    phases.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));

    Ok(ReportSummary {
        events,
        phases,
        pagerank: runs
            .into_iter()
            .map(
                |(run, (iterations, converged, final_residual))| PagerankRun {
                    run,
                    iterations,
                    converged,
                    final_residual,
                },
            )
            .collect(),
        event_counts: event_counts.into_iter().collect(),
    })
}

/// Nanoseconds as a human-scale duration.
fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.1} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.1} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn phase_table(out: &mut String, rows: &[(String, u64, f64)]) {
    // Share is relative to the root spans (paths without '/'), so
    // nested phases read as fractions of their run.
    let root_total: f64 = rows
        .iter()
        .filter(|(name, _, _)| !name.contains('/'))
        .map(|(_, _, total)| total)
        .sum();
    let denom = if root_total > 0.0 {
        root_total
    } else {
        rows.iter().map(|(_, _, total)| total).sum::<f64>().max(1.0)
    };
    let _ = writeln!(
        out,
        "  {:<32} {:>8} {:>12} {:>12} {:>7}",
        "phase", "count", "total", "mean", "share"
    );
    for (name, count, total_ns) in rows {
        let mean = if *count == 0 {
            0.0
        } else {
            total_ns / *count as f64
        };
        let _ = writeln!(
            out,
            "  {:<32} {:>8} {:>12} {:>12} {:>6.1}%",
            name,
            count,
            fmt_ns(*total_ns),
            fmt_ns(mean),
            100.0 * total_ns / denom
        );
    }
}

/// Render the `pagerankvm report` output for a summarized event log.
pub fn render_report(summary: &ReportSummary) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "events: {}", summary.events);

    if !summary.phases.is_empty() {
        let _ = writeln!(out, "\nphase breakdown");
        let rows: Vec<(String, u64, f64)> = summary
            .phases
            .iter()
            .map(|p| (p.name.clone(), p.count, p.total_ns as f64))
            .collect();
        phase_table(&mut out, &rows);
    }

    if !summary.pagerank.is_empty() {
        let _ = writeln!(out, "\npagerank convergence");
        for run in &summary.pagerank {
            if run.converged {
                let _ = writeln!(
                    out,
                    "  run {}: converged in {} iterations, final residual {:.3e}",
                    run.run, run.iterations, run.final_residual
                );
            } else {
                let _ = writeln!(
                    out,
                    "  run {}: NOT CONVERGED after {} iterations, final residual {:.3e}",
                    run.run, run.iterations, run.final_residual
                );
            }
        }
    }

    if !summary.event_counts.is_empty() {
        let _ = writeln!(out, "\nevent counts");
        for (name, count) in &summary.event_counts {
            let _ = writeln!(out, "  {name:<32} {count:>8}");
        }
    }
    out
}

/// Render a live [`MetricsSnapshot`] as the end-of-run report printed
/// by the CLI.
pub fn render_metrics(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    if !snapshot.phases.is_empty() {
        let _ = writeln!(out, "phase breakdown");
        let rows: Vec<(String, u64, f64)> = snapshot
            .phases
            .iter()
            .map(|p| (p.name.clone(), p.count, p.total_ms * 1e6))
            .collect();
        let mut rows = rows;
        rows.sort_by(|a, b| b.2.total_cmp(&a.2).then(a.0.cmp(&b.0)));
        phase_table(&mut out, &rows);
    }
    if !snapshot.counters.is_empty() {
        let _ = writeln!(out, "\ncounters");
        for (name, value) in &snapshot.counters {
            let _ = writeln!(out, "  {name:<40} {value:>12}");
        }
    }
    if !snapshot.gauges.is_empty() {
        let _ = writeln!(out, "\ngauges");
        for (name, value) in &snapshot.gauges {
            let _ = writeln!(out, "  {name:<40} {value:>12.4}");
        }
    }
    if !snapshot.series.is_empty() {
        let _ = writeln!(out, "\nseries");
        for (name, values) in &snapshot.series {
            let last = values.last().copied().unwrap_or(f64::NAN);
            let _ = writeln!(
                out,
                "  {name:<40} {:>5} points, last {last:.3e}",
                values.len()
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample_log() -> String {
        [
            r#"{"seq":1,"ts_s":0.001,"name":"graph.built","span":"place/graph_build","fields":{"nodes":10,"edges":20}}"#,
            r#"{"seq":2,"ts_s":0.002,"name":"span_end","span":"place","fields":{"span":"place/graph_build","duration_ns":2000000}}"#,
            r#"{"seq":3,"ts_s":0.003,"name":"pagerank.iteration","span":"place/pagerank","fields":{"run":1,"iter":1,"residual":0.5}}"#,
            r#"{"seq":4,"ts_s":0.004,"name":"pagerank.iteration","span":"place/pagerank","fields":{"run":1,"iter":2,"residual":0.01}}"#,
            r#"{"seq":5,"ts_s":0.005,"name":"pagerank.done","span":"place/pagerank","fields":{"run":1,"iterations":2,"converged":true,"residual":0.01}}"#,
            r#"{"seq":6,"ts_s":0.006,"name":"span_end","span":"place","fields":{"span":"place/pagerank","duration_ns":1000000}}"#,
            r#"{"seq":7,"ts_s":0.007,"name":"span_end","span":null,"fields":{"span":"place","duration_ns":4000000}}"#,
        ]
        .join("\n")
    }

    #[test]
    fn summarize_reconstructs_phases_and_convergence() {
        let summary = summarize_events(Cursor::new(sample_log())).expect("valid log");
        assert_eq!(summary.events, 7);
        assert_eq!(summary.phases.len(), 3);
        // Sorted by total time: the root span leads.
        assert_eq!(summary.phases[0].name, "place");
        assert_eq!(summary.phases[0].total_ns, 4_000_000);
        assert_eq!(summary.pagerank.len(), 1);
        let run = &summary.pagerank[0];
        assert_eq!(run.iterations, 2);
        assert!(run.converged);
        assert!((run.final_residual - 0.01).abs() < 1e-12);
        assert_eq!(
            summary
                .event_counts
                .iter()
                .find(|(n, _)| n == "span_end")
                .map(|(_, c)| *c),
            Some(3)
        );
    }

    #[test]
    fn truncated_log_reports_non_convergence() {
        // No pagerank.done event: the run must not read as converged.
        let log = r#"{"seq":1,"ts_s":0.0,"name":"pagerank.iteration","span":null,"fields":{"run":3,"iter":7,"residual":0.2}}"#;
        let summary = summarize_events(Cursor::new(log)).expect("valid log");
        assert_eq!(summary.pagerank.len(), 1);
        assert_eq!(summary.pagerank[0].run, 3);
        assert_eq!(summary.pagerank[0].iterations, 7);
        assert!(!summary.pagerank[0].converged);
    }

    #[test]
    fn invalid_lines_are_rejected_with_position() {
        let err = summarize_events(Cursor::new("not json")).unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        let log = format!(
            "{}\n{{\"no_name\":1}}",
            sample_log().lines().next().unwrap()
        );
        let err = summarize_events(Cursor::new(log)).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn render_mentions_convergence_and_phases() {
        let summary = summarize_events(Cursor::new(sample_log())).expect("valid log");
        let text = render_report(&summary);
        assert!(text.contains("phase breakdown"));
        assert!(text.contains("place/pagerank"));
        assert!(text.contains("converged in 2 iterations"));
        assert!(text.contains("events: 7"));
    }

    /// The JSON form of a summary (`report --format json`) round-trips
    /// losslessly — finite residuals only, since JSON has no NaN.
    #[test]
    fn summary_round_trips_through_json() {
        let summary = summarize_events(Cursor::new(sample_log())).expect("valid log");
        let json = serde_json::to_string(&summary).expect("serializes");
        let back: ReportSummary = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back, summary);
        assert!(json.contains("\"phases\""), "{json}");
        assert!(json.contains("place/pagerank"), "{json}");
    }

    #[test]
    fn render_metrics_lists_counters_and_series() {
        let reg = crate::Registry::new();
        reg.counter("sim.migrations").add(12);
        reg.histogram("span.scan")
            .record_duration(std::time::Duration::from_millis(1));
        reg.series("pagerank.residuals.1").push(0.5);
        reg.series("pagerank.residuals.1").push(0.001);
        let text = render_metrics(&reg.snapshot());
        assert!(text.contains("sim.migrations"));
        assert!(text.contains("scan"));
        assert!(text.contains("2 points"));
    }
}
