//! Heap accounting for profiling: a counting [`std::alloc::GlobalAlloc`]
//! wrapper around the system allocator, compiled in only under the
//! `prof-alloc` feature (std-only; no effect on release builds that
//! leave the feature off).
//!
//! Every allocation/deallocation updates a process-wide live-bytes
//! counter and two peaks — an all-time peak and a resettable *window*
//! peak. [`MemoryWindow`] brackets a phase: root [`crate::Span`]s open
//! one on entry and, on drop, report the window's net growth and peak
//! as `mem.<phase>.net_bytes` / `mem.<phase>.peak_bytes` gauges in the
//! global registry. Counters are relaxed atomics: a handful of
//! uncontended atomic ops per allocation, accurate to the byte for
//! single-threaded phases and a faithful global high-water mark for
//! parallel ones.
//!
//! This is the only unsafe code in the workspace (the workspace denies
//! `unsafe_code`); the `#[allow]` is scoped to the trait impl, which
//! merely forwards to [`std::alloc::System`] and adjusts counters.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Live heap bytes right now (allocated minus freed since start).
static CURRENT: AtomicI64 = AtomicI64::new(0);
/// All-time high-water mark of [`CURRENT`].
static PEAK: AtomicI64 = AtomicI64::new(0);
/// High-water mark since the last [`MemoryWindow::start`].
static WINDOW_PEAK: AtomicI64 = AtomicI64::new(0);
/// Total bytes ever allocated.
static TOTAL_ALLOCATED: AtomicU64 = AtomicU64::new(0);
/// Total allocation calls.
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

fn on_alloc(size: usize) {
    let size = size as i64;
    let now = CURRENT.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(now, Ordering::Relaxed);
    WINDOW_PEAK.fetch_max(now, Ordering::Relaxed);
    TOTAL_ALLOCATED.fetch_add(size as u64, Ordering::Relaxed);
    ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
}

fn on_free(size: usize) {
    CURRENT.fetch_sub(size as i64, Ordering::Relaxed);
}

/// Point-in-time allocator totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocStats {
    /// Live heap bytes.
    pub current_bytes: i64,
    /// All-time live-bytes peak.
    pub peak_bytes: i64,
    /// Bytes ever allocated (monotonic).
    pub total_allocated_bytes: u64,
    /// Allocation calls ever made (monotonic).
    pub allocations: u64,
}

/// Snapshot the process-wide allocator counters.
pub fn stats() -> AllocStats {
    AllocStats {
        current_bytes: CURRENT.load(Ordering::Relaxed),
        peak_bytes: PEAK.load(Ordering::Relaxed),
        total_allocated_bytes: TOTAL_ALLOCATED.load(Ordering::Relaxed),
        allocations: ALLOCATIONS.load(Ordering::Relaxed),
    }
}

/// Brackets a phase for heap accounting; see [`MemoryWindow::start`]
/// and [`MemoryWindow::finish`].
#[must_use = "call .finish() to read the window's net/peak bytes"]
#[derive(Debug)]
pub struct MemoryWindow {
    start_bytes: i64,
}

/// What a [`MemoryWindow`] observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryDelta {
    /// Live-bytes growth across the window (negative when the phase
    /// freed more than it allocated).
    pub net_bytes: i64,
    /// Highest live-bytes level reached during the window, relative to
    /// the level at window start.
    pub peak_bytes: i64,
}

impl MemoryWindow {
    /// Open a window at the current live-bytes level and reset the
    /// window peak to it. Windows are global: opening one while
    /// another is in flight folds both phases into the newer window's
    /// peak, which is why only **root** spans open them (root spans on
    /// the orchestrating thread run strictly one at a time).
    pub fn start() -> MemoryWindow {
        let start_bytes = CURRENT.load(Ordering::Relaxed);
        WINDOW_PEAK.store(start_bytes, Ordering::Relaxed);
        MemoryWindow { start_bytes }
    }

    /// Close the window and report its net growth and relative peak.
    pub fn finish(self) -> MemoryDelta {
        let end = CURRENT.load(Ordering::Relaxed);
        let window_peak = WINDOW_PEAK.load(Ordering::Relaxed);
        MemoryDelta {
            net_bytes: end - self.start_bytes,
            peak_bytes: (window_peak - self.start_bytes).max(0),
        }
    }
}

/// Counting allocator: forwards to [`std::alloc::System`], tallying
/// sizes on the way through. Installed as the `#[global_allocator]`
/// for every binary that links `prvm-obs` with `prof-alloc` on.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingAlloc;

// The one sanctioned unsafe block in the workspace: implementing
// `GlobalAlloc` is inherently unsafe, and this impl only forwards each
// call to `System` verbatim and bumps relaxed counters — it never
// touches the returned memory.
#[allow(unsafe_code)]
mod imp {
    use super::{on_alloc, on_free, CountingAlloc};
    use std::alloc::{GlobalAlloc, Layout, System};

    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let ptr = unsafe { System.alloc(layout) };
            if !ptr.is_null() {
                on_alloc(layout.size());
            }
            ptr
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            let ptr = unsafe { System.alloc_zeroed(layout) };
            if !ptr.is_null() {
                on_alloc(layout.size());
            }
            ptr
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) };
            on_free(layout.size());
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            let new_ptr = unsafe { System.realloc(ptr, layout, new_size) };
            if !new_ptr.is_null() {
                on_free(layout.size());
                on_alloc(new_size);
            }
            new_ptr
        }
    }
}

#[global_allocator]
static COUNTING_ALLOC: CountingAlloc = CountingAlloc;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_move_the_counters() {
        let before = stats();
        let block = vec![0u8; 1 << 20];
        std::hint::black_box(&block);
        let during = stats();
        drop(block);
        // Monotonic counters are immune to other test threads freeing.
        assert!(
            during.total_allocated_bytes - before.total_allocated_bytes >= (1 << 20),
            "1 MiB allocation not counted"
        );
        assert!(during.allocations > before.allocations);
        assert!(during.peak_bytes > 0);
    }

    #[test]
    fn windows_observe_net_and_peak() {
        // Serialize against the other global-state tests; their small
        // allocations cannot mask a 256 KiB transient.
        let _guard = crate::global_registry_test_lock();
        let window = MemoryWindow::start();
        let block = vec![0u8; 1 << 18];
        std::hint::black_box(&block);
        drop(block);
        let delta = window.finish();
        assert!(
            delta.peak_bytes >= (1 << 18) / 2,
            "peak {} missed the 256 KiB transient",
            delta.peak_bytes
        );
        assert!(
            delta.net_bytes < (1 << 18) / 2,
            "net {} should not retain the dropped transient",
            delta.net_bytes
        );
    }
}
