//! Integration test of the global event sink: JSONL capture, ordering
//! under concurrent emitters, and report reconstruction from the
//! recorded file.
//!
//! Everything lives in one test function because the sink is
//! process-global state.

use prvm_obs::{event, flush, init, summarize_events, LogMode, ObsConfig, Span};
use serde::Value;
use std::io::BufReader;
use std::path::PathBuf;

fn temp_events_path() -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("prvm-obs-sink-test-{}.jsonl", std::process::id()));
    path
}

#[test]
fn jsonl_sink_records_ordered_replayable_events() {
    let path = temp_events_path();
    init(ObsConfig {
        log: LogMode::Off,
        events_path: Some(path.clone()),
    })
    .expect("events file opens");
    assert!(prvm_obs::is_enabled(), "file sink enables emission");

    // A spanned phase plus concurrent emitters.
    {
        let _phase = Span::enter("test_phase");
        event("inside.span").field("marker", 1u64).emit();
    }
    let threads: Vec<_> = (0..4)
        .map(|t| {
            std::thread::spawn(move || {
                for i in 0..50u64 {
                    event("worker.tick")
                        .field("thread", t as u64)
                        .field("i", i)
                        .emit();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("worker");
    }
    event("pagerank.iteration")
        .field("run", 1u64)
        .field("iter", 1u64)
        .field("residual", 0.25f64)
        .emit();
    event("pagerank.done")
        .field("run", 1u64)
        .field("iterations", 1u64)
        .field("converged", true)
        .field("residual", 0.25f64)
        .emit();
    flush().expect("flush");

    let text = std::fs::read_to_string(&path).expect("events file readable");
    let lines: Vec<&str> = text.lines().collect();
    // span_end + inside.span + 200 ticks + 2 pagerank events.
    assert_eq!(lines.len(), 204, "every emitted event is on its own line");

    // Each line is a valid envelope and seq is strictly increasing in
    // file order (delivery is serialized).
    let mut last_seq = 0;
    let mut last_ts = 0.0f64;
    for line in &lines {
        let entry: Value = serde_json::from_str(line).expect("valid JSON line");
        let seq = entry.field("seq").and_then(Value::as_u64).expect("seq");
        let ts = entry.field("ts_s").and_then(Value::as_f64).expect("ts_s");
        assert!(seq > last_seq, "seq strictly increasing in file order");
        assert!(ts >= last_ts, "timestamps monotone");
        last_seq = seq;
        last_ts = ts;
        entry.field("name").expect("name");
        entry.field("fields").expect("fields");
    }

    // Ambient span attribution: the event inside the span carries its
    // path, and the span's own end event recorded a duration.
    let inside: Value = lines
        .iter()
        .map(|l| serde_json::from_str(l).expect("valid"))
        .find(|e: &Value| matches!(e.field("name"), Ok(Value::Str(n)) if n == "inside.span"))
        .expect("inside.span event present");
    assert_eq!(
        inside.field("span").expect("span attr"),
        &Value::Str("test_phase".into())
    );

    // The recorded log replays through the report pipeline.
    let file = std::fs::File::open(&path).expect("reopen");
    let summary = summarize_events(BufReader::new(file)).expect("log parses");
    assert_eq!(summary.events, 204);
    assert_eq!(summary.phases.len(), 1);
    assert_eq!(summary.phases[0].name, "test_phase");
    assert!(summary.phases[0].total_ns > 0);
    assert_eq!(summary.pagerank.len(), 1);
    assert!(summary.pagerank[0].converged);

    // Re-init with no sink output: emission disables and the builder
    // becomes a no-op (the file must not grow).
    init(ObsConfig::default()).expect("re-init");
    assert!(!prvm_obs::is_enabled());
    event("after.shutdown").field("x", 1u64).emit();
    flush().expect("flush");
    let after = std::fs::read_to_string(&path).expect("events file readable");
    assert_eq!(after.lines().count(), 204, "closed sink records nothing");

    std::fs::remove_file(&path).ok();
}
