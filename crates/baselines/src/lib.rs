//! Baseline VM placement algorithms the paper compares against (§VI-A):
//!
//! * [`FirstFit`] — FF \[27\]: the first PM with sufficient resources.
//! * [`FfdSum`] — FFDSum \[30\]: order VMs by decreasing normalised demand
//!   sum, then first-fit.
//! * [`CompVm`] — CompVM \[10\]: consolidate complementary VMs by
//!   minimising the variance of post-placement utilization across
//!   dimensions.
//! * [`BestFit`] / [`WorstFit`] — classic bin-packing extras for ablations.
//! * [`MinimumMigrationTime`] / [`HighestDemandFirst`] — eviction policies
//!   for overloaded PMs (CloudSim's default MMT, and a throughput-oriented
//!   alternative).
//!
//! All placers honour the anti-collocation constraints through the same
//! assignment machinery PageRankVM uses (the paper: "All algorithms use the
//! strategy of PageRankVM to satisfy the anti-collocation constraints").

#![warn(missing_docs)]

pub mod bestfit;
pub mod compvm;
pub mod ff;
pub mod ffdsum;
pub mod migration;

pub use bestfit::{BestFit, WorstFit};
pub use compvm::CompVm;
pub use ff::FirstFit;
pub use ffdsum::FfdSum;
pub use migration::{HighestDemandFirst, MinimumMigrationTime};

use prvm_model::{Assignment, Pm, VmSpec};

/// Per-dimension utilization profile of `pm` after hypothetically applying
/// `assignment` for `vm` (cores, then memory if present, then disks) —
/// shared by the variance- and fit-based baselines.
#[must_use]
pub fn post_placement_profile(pm: &Pm, vm: &VmSpec, assignment: &Assignment) -> Vec<f64> {
    let spec = pm.spec();
    let core_cap = spec.core_mhz.get() as f64;
    let mut out: Vec<f64> = pm
        .core_used()
        .iter()
        .map(|u| u.get() as f64 / core_cap)
        .collect();
    for &c in &assignment.cores {
        out[c] += vm.vcpu_mhz.get() as f64 / core_cap;
    }
    if spec.memory.get() > 0 {
        out.push((pm.mem_used().get() + vm.memory.get()) as f64 / spec.memory.get() as f64);
    }
    let disk_base = out.len();
    out.extend(
        pm.disk_used()
            .iter()
            .zip(spec.disks())
            .map(|(u, c)| u.get() as f64 / c.get() as f64),
    );
    for (k, &d) in assignment.disks.iter().enumerate() {
        out[disk_base + d] += vm.disks()[k].get() as f64 / spec.disks()[d].get() as f64;
    }
    out
}

/// Mean and variance of a utilization profile.
#[must_use]
pub fn mean_variance(profile: &[f64]) -> (f64, f64) {
    let n = profile.len() as f64;
    let mean = profile.iter().sum::<f64>() / n;
    let var = profile.iter().map(|p| (p - mean).powi(2)).sum::<f64>() / n;
    (mean, var)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prvm_model::catalog;

    #[test]
    fn post_placement_profile_adds_demands_in_place() {
        let pm = Pm::new(catalog::pm_m3());
        let vm = catalog::vm_m3_large(); // 2 vCPUs, 7.5 GiB, 1 x 32 GB
        let a = pm.first_feasible(&vm).unwrap();
        let prof = post_placement_profile(&pm, &vm, &a);
        assert_eq!(prof.len(), 8 + 1 + 4);
        let cpu_frac = 600.0 / 2600.0;
        let loaded: Vec<f64> = prof[..8].iter().copied().filter(|&p| p > 0.0).collect();
        assert_eq!(loaded.len(), 2);
        assert!(loaded.iter().all(|&p| (p - cpu_frac).abs() < 1e-12));
        assert!((prof[8] - 7.5 / 64.0).abs() < 1e-12);
        let disks: f64 = prof[9..].iter().sum();
        assert!((disks - 32.0 / 250.0).abs() < 1e-12);
    }

    #[test]
    fn mean_variance_basics() {
        let (m, v) = mean_variance(&[0.5, 0.5, 0.5, 0.5]);
        assert_eq!((m, v), (0.5, 0.0));
        let (m, v) = mean_variance(&[1.0, 0.0]);
        assert!((m - 0.5).abs() < 1e-12);
        assert!((v - 0.25).abs() < 1e-12);
    }
}
