//! First Fit (FF) — the Eucalyptus-style baseline \[27\].

use prvm_model::{Cluster, PlacementAlgorithm, PlacementDecision, PmId, VmSpec};

/// Places each VM on the first PM (used list first, then unused) that has a
/// feasible anti-collocated assignment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FirstFit;

impl FirstFit {
    /// Create a first-fit placer.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl PlacementAlgorithm for FirstFit {
    fn name(&self) -> &str {
        "FF"
    }

    fn choose(
        &mut self,
        cluster: &Cluster,
        vm: &VmSpec,
        exclude: &dyn Fn(PmId) -> bool,
    ) -> Option<PlacementDecision> {
        cluster
            .used_pms()
            .chain(cluster.unused_pms())
            .filter(|&pm| !exclude(pm))
            .find_map(|pm| {
                let host = cluster.pm(pm);
                if !host.has_aggregate_room(vm) {
                    return None;
                }
                host.first_feasible(vm)
                    .map(|assignment| PlacementDecision { pm, assignment })
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prvm_model::{catalog, place_batch, Cluster};

    #[test]
    fn fills_first_pm_before_opening_second() {
        let mut ff = FirstFit::new();
        let mut cluster = Cluster::homogeneous(catalog::pm_m3(), 3);
        let vms = vec![catalog::vm_m3_medium(); 4];
        place_batch(&mut ff, &mut cluster, vms).unwrap();
        assert_eq!(cluster.active_pm_count(), 1);
        assert_eq!(cluster.pm(PmId(0)).vm_count(), 4);
    }

    #[test]
    fn opens_new_pm_when_first_is_full() {
        let mut ff = FirstFit::new();
        // C3 holds 7.5 GiB: two c3.large (3.75 GiB each) fill its memory.
        let mut cluster = Cluster::homogeneous(catalog::pm_c3(), 2);
        let vms = vec![catalog::vm_c3_large(); 3];
        place_batch(&mut ff, &mut cluster, vms).unwrap();
        assert_eq!(cluster.active_pm_count(), 2);
    }

    #[test]
    fn returns_none_when_everything_is_full() {
        let mut ff = FirstFit::new();
        let mut cluster = Cluster::homogeneous(catalog::pm_c3(), 1);
        place_batch(&mut ff, &mut cluster, vec![catalog::vm_c3_large(); 2]).unwrap();
        assert!(ff
            .choose(&cluster, &catalog::vm_c3_large(), &|_| false)
            .is_none());
    }

    #[test]
    fn respects_exclusion() {
        let mut ff = FirstFit::new();
        let cluster = Cluster::homogeneous(catalog::pm_m3(), 2);
        let d = ff
            .choose(&cluster, &catalog::vm_m3_medium(), &|pm| pm == PmId(0))
            .unwrap();
        assert_eq!(d.pm, PmId(1));
    }
}
