//! CompVM — consolidation of complementary VMs (Chen & Shen,
//! INFOCOM 2014 \[10\]).
//!
//! CompVM coordinates multi-dimensional requirements by packing VMs whose
//! demands are complementary: among used PMs it picks the placement that
//! minimises the **variance** of post-placement utilization across
//! dimensions (breaking ties toward higher total utilization). This is
//! exactly the "variance-based approach" the paper's motivation section
//! argues PageRankVM improves upon, so it doubles as the ablation of that
//! claim.

use crate::{mean_variance, post_placement_profile};
use prvm_model::{Cluster, PlacementAlgorithm, PlacementDecision, PmId, VmSpec};

/// Variance-minimising consolidation placer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompVm;

impl CompVm {
    /// Create a CompVM placer.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl PlacementAlgorithm for CompVm {
    fn name(&self) -> &str {
        "CompVM"
    }

    fn choose(
        &mut self,
        cluster: &Cluster,
        vm: &VmSpec,
        exclude: &dyn Fn(PmId) -> bool,
    ) -> Option<PlacementDecision> {
        // Best (lowest variance, then highest mean utilization) over every
        // distinct assignment on every used PM.
        let mut best: Option<(f64, f64, PlacementDecision)> = None;
        for pm in cluster.used_pms() {
            if exclude(pm) {
                continue;
            }
            let host = cluster.pm(pm);
            if !host.has_aggregate_room(vm) {
                continue;
            }
            for assignment in host.distinct_feasible(vm) {
                let profile = post_placement_profile(host, vm, &assignment);
                let (mean, var) = mean_variance(&profile);
                let better = match &best {
                    None => true,
                    Some((bv, bm, _)) => var < *bv || (var == *bv && mean > *bm),
                };
                if better {
                    best = Some((var, mean, PlacementDecision { pm, assignment }));
                }
            }
        }
        if let Some((_, _, d)) = best {
            return Some(d);
        }
        // No used PM fits: open the first unused PM that does.
        cluster
            .unused_pms()
            .filter(|&pm| !exclude(pm))
            .find_map(|pm| {
                cluster
                    .pm(pm)
                    .first_feasible(vm)
                    .map(|assignment| PlacementDecision { pm, assignment })
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prvm_model::{catalog, place_batch, Cluster, Pm};

    #[test]
    fn consolidates_onto_used_pms() {
        let mut algo = CompVm::new();
        let mut cluster = Cluster::homogeneous(catalog::pm_m3(), 4);
        let vms = vec![catalog::vm_m3_medium(); 6];
        place_batch(&mut algo, &mut cluster, vms).unwrap();
        assert_eq!(cluster.active_pm_count(), 1);
    }

    #[test]
    fn prefers_variance_minimising_assignment() {
        // Put one m3.large on a PM, then place another: CompVM should
        // spread the vCPUs onto the *unloaded* cores (lower variance than
        // stacking onto the loaded ones).
        let mut cluster = Cluster::homogeneous(catalog::pm_m3(), 1);
        let vm = catalog::vm_m3_large();
        let a = cluster.pm(PmId(0)).first_feasible(&vm).unwrap();
        cluster.place(PmId(0), vm.clone(), a.clone()).unwrap();

        let mut algo = CompVm::new();
        let d = algo.choose(&cluster, &vm, &|_| false).unwrap();
        for c in &d.assignment.cores {
            assert!(
                !a.cores.contains(c),
                "CompVM stacked onto an already-loaded core"
            );
        }
    }

    #[test]
    fn falls_back_to_unused_pm() {
        let mut cluster = Cluster::homogeneous(catalog::pm_c3(), 2);
        let vm = catalog::vm_c3_large();
        // Fill PM 0's memory (2 x 3.75 = 7.5 GiB).
        for _ in 0..2 {
            let a = cluster.pm(PmId(0)).first_feasible(&vm).unwrap();
            cluster.place(PmId(0), vm.clone(), a).unwrap();
        }
        let mut algo = CompVm::new();
        let d = algo.choose(&cluster, &vm, &|_| false).unwrap();
        assert_eq!(d.pm, PmId(1));
    }

    #[test]
    fn variance_tiebreak_prefers_higher_utilization() {
        // Trivial sanity: with a single empty PM the chosen assignment is
        // valid and the decision exists.
        let cluster = Cluster::homogeneous(catalog::pm_m3(), 1);
        let mut algo = CompVm::new();
        let vm = catalog::vm_m3_medium();
        // Empty cluster: no used PM, falls to unused.
        let d = algo.choose(&cluster, &vm, &|_| false).unwrap();
        let pm = Pm::new(catalog::pm_m3());
        pm.validate(&vm, &d.assignment).unwrap();
    }
}
