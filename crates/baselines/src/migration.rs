//! Eviction policies for overloaded PMs.
//!
//! The paper runs the baselines with "the default VM migration algorithm in
//! CloudSim" — the *Minimum Migration Time* policy of Beloglazov & Buyya:
//! among an overloaded host's VMs, migrate the one that migrates fastest,
//! i.e. the one with the least RAM. [`HighestDemandFirst`] is an
//! alternative that clears the overload with the fewest evictions.

use prvm_model::{EvictionPolicy, Mhz, Pm, VmId};

/// CloudSim's default: evict the VM with the smallest memory footprint
/// (fastest to migrate).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MinimumMigrationTime;

impl MinimumMigrationTime {
    /// Create the MMT policy.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl EvictionPolicy for MinimumMigrationTime {
    fn name(&self) -> &str {
        "MMT"
    }

    fn select(&mut self, pm: &Pm, _cpu_demand: &dyn Fn(VmId) -> Mhz) -> Option<VmId> {
        pm.vms()
            .min_by_key(|(id, vm, _)| (vm.memory, *id))
            .map(|(id, _, _)| id)
    }
}

/// Evicts the VM with the highest current CPU demand — clears the overload
/// with as few migrations as possible.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HighestDemandFirst;

impl HighestDemandFirst {
    /// Create the policy.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl EvictionPolicy for HighestDemandFirst {
    fn name(&self) -> &str {
        "HighestDemandFirst"
    }

    fn select(&mut self, pm: &Pm, cpu_demand: &dyn Fn(VmId) -> Mhz) -> Option<VmId> {
        pm.vms()
            .max_by_key(|(id, _, _)| (cpu_demand(*id), std::cmp::Reverse(*id)))
            .map(|(id, _, _)| id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prvm_model::{catalog, Cluster, PmId};

    fn loaded_pm() -> (Cluster, VmId, VmId) {
        let mut c = Cluster::homogeneous(catalog::pm_m3(), 1);
        let small = catalog::vm_m3_medium(); // 3.75 GiB
        let big = catalog::vm_m3_xlarge(); // 15 GiB
        let a = c.pm(PmId(0)).first_feasible(&big).unwrap();
        let big_id = c.place(PmId(0), big, a).unwrap();
        let a = c.pm(PmId(0)).first_feasible(&small).unwrap();
        let small_id = c.place(PmId(0), small, a).unwrap();
        (c, big_id, small_id)
    }

    #[test]
    fn mmt_evicts_smallest_memory() {
        let (c, _big, small) = loaded_pm();
        let mut mmt = MinimumMigrationTime::new();
        let victim = mmt.select(c.pm(PmId(0)), &|_| Mhz::ZERO).unwrap();
        assert_eq!(victim, small);
    }

    #[test]
    fn hdf_evicts_highest_cpu_demand() {
        let (c, big, _small) = loaded_pm();
        let mut hdf = HighestDemandFirst::new();
        // Give the big VM the higher live demand.
        let victim = hdf
            .select(c.pm(PmId(0)), &|id| {
                if id == big {
                    Mhz(2000)
                } else {
                    Mhz(100)
                }
            })
            .unwrap();
        assert_eq!(victim, big);
    }

    #[test]
    fn empty_pm_selects_nothing() {
        let c = Cluster::homogeneous(catalog::pm_m3(), 1);
        assert_eq!(
            MinimumMigrationTime::new().select(c.pm(PmId(0)), &|_| Mhz::ZERO),
            None
        );
        assert_eq!(
            HighestDemandFirst::new().select(c.pm(PmId(0)), &|_| Mhz::ZERO),
            None
        );
    }

    #[test]
    fn mmt_ties_break_deterministically() {
        let mut c = Cluster::homogeneous(catalog::pm_m3(), 1);
        let vm = catalog::vm_m3_medium();
        let a = c.pm(PmId(0)).first_feasible(&vm).unwrap();
        let first = c.place(PmId(0), vm.clone(), a).unwrap();
        let a = c.pm(PmId(0)).first_feasible(&vm).unwrap();
        c.place(PmId(0), vm, a).unwrap();
        let mut mmt = MinimumMigrationTime::new();
        assert_eq!(mmt.select(c.pm(PmId(0)), &|_| Mhz::ZERO), Some(first));
    }
}
