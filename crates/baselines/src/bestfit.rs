//! Best fit and worst fit — classic bin-packing references used by the
//! workspace's ablation benches.
//!
//! Best fit follows \[10\]'s description quoted in the paper's
//! introduction: "allocates a VM to the best-fit PM that has the minimum
//! remaining resources after allocating the VM".

use crate::{mean_variance, post_placement_profile};
use prvm_model::{Cluster, PlacementAlgorithm, PlacementDecision, PmId, VmSpec};

/// Chooses the used PM with the *least* remaining normalised capacity after
/// placement (tightest fit).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BestFit;

/// Chooses the used PM with the *most* remaining normalised capacity after
/// placement (loosest fit).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorstFit;

impl BestFit {
    /// Create a best-fit placer.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl WorstFit {
    /// Create a worst-fit placer.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

fn choose_by_mean(
    cluster: &Cluster,
    vm: &VmSpec,
    exclude: &dyn Fn(PmId) -> bool,
    highest: bool,
) -> Option<PlacementDecision> {
    let mut best: Option<(f64, PlacementDecision)> = None;
    for pm in cluster.used_pms() {
        if exclude(pm) {
            continue;
        }
        let host = cluster.pm(pm);
        if !host.has_aggregate_room(vm) {
            continue;
        }
        let Some(assignment) = host.first_feasible(vm) else {
            continue;
        };
        let (mean, _) = mean_variance(&post_placement_profile(host, vm, &assignment));
        let better = match &best {
            None => true,
            Some((b, _)) => {
                if highest {
                    mean > *b
                } else {
                    mean < *b
                }
            }
        };
        if better {
            best = Some((mean, PlacementDecision { pm, assignment }));
        }
    }
    if let Some((_, d)) = best {
        return Some(d);
    }
    cluster
        .unused_pms()
        .filter(|&pm| !exclude(pm))
        .find_map(|pm| {
            cluster
                .pm(pm)
                .first_feasible(vm)
                .map(|assignment| PlacementDecision { pm, assignment })
        })
}

impl PlacementAlgorithm for BestFit {
    fn name(&self) -> &str {
        "BestFit"
    }

    fn choose(
        &mut self,
        cluster: &Cluster,
        vm: &VmSpec,
        exclude: &dyn Fn(PmId) -> bool,
    ) -> Option<PlacementDecision> {
        choose_by_mean(cluster, vm, exclude, true)
    }
}

impl PlacementAlgorithm for WorstFit {
    fn name(&self) -> &str {
        "WorstFit"
    }

    fn choose(
        &mut self,
        cluster: &Cluster,
        vm: &VmSpec,
        exclude: &dyn Fn(PmId) -> bool,
    ) -> Option<PlacementDecision> {
        choose_by_mean(cluster, vm, exclude, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prvm_model::{catalog, Cluster};

    fn two_used_pms() -> Cluster {
        let mut c = Cluster::homogeneous(catalog::pm_m3(), 3);
        // PM 0 lightly loaded, PM 1 heavily loaded.
        let small = catalog::vm_m3_medium();
        let big = catalog::vm_m3_2xlarge();
        let a = c.pm(PmId(0)).first_feasible(&small).unwrap();
        c.place(PmId(0), small, a).unwrap();
        let a = c.pm(PmId(1)).first_feasible(&big).unwrap();
        c.place(PmId(1), big, a).unwrap();
        c
    }

    #[test]
    fn best_fit_picks_the_fuller_pm() {
        let c = two_used_pms();
        let d = BestFit::new()
            .choose(&c, &catalog::vm_m3_medium(), &|_| false)
            .unwrap();
        assert_eq!(d.pm, PmId(1));
    }

    #[test]
    fn worst_fit_picks_the_emptier_pm() {
        let c = two_used_pms();
        let d = WorstFit::new()
            .choose(&c, &catalog::vm_m3_medium(), &|_| false)
            .unwrap();
        assert_eq!(d.pm, PmId(0));
    }

    #[test]
    fn both_open_unused_pm_when_nothing_fits() {
        let mut c = Cluster::homogeneous(catalog::pm_c3(), 2);
        let vm = catalog::vm_c3_large();
        for _ in 0..2 {
            let a = c.pm(PmId(0)).first_feasible(&vm).unwrap();
            c.place(PmId(0), vm.clone(), a).unwrap();
        }
        assert_eq!(
            BestFit::new().choose(&c, &vm, &|_| false).unwrap().pm,
            PmId(1)
        );
        assert_eq!(
            WorstFit::new().choose(&c, &vm, &|_| false).unwrap().pm,
            PmId(1)
        );
    }
}
