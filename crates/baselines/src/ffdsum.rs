//! First Fit Decreasing Sum (FFDSum) — Panigrahy et al.'s vector bin
//! packing heuristic \[30\].
//!
//! The "size" of a VM is the weighted sum of its demand vector, each
//! dimension normalised by a reference PM's capacity. VMs are placed in
//! order of decreasing size, each by first fit.

use prvm_model::{Cluster, PlacementAlgorithm, PlacementDecision, PmId, PmSpec, VmSpec};

/// FFDSum: decreasing-size ordering over a first-fit placer.
#[derive(Debug, Clone, PartialEq)]
pub struct FfdSum {
    reference: PmSpec,
}

impl FfdSum {
    /// Create an FFDSum placer; `reference` provides the capacities used to
    /// normalise each demand dimension (typically the dominant PM type of
    /// the datacenter).
    #[must_use]
    pub fn new(reference: PmSpec) -> Self {
        Self { reference }
    }

    /// The normalised size of a VM under this placer's reference PM.
    #[must_use]
    pub fn size(&self, vm: &VmSpec) -> f64 {
        vm.normalized_size(
            self.reference.total_cpu(),
            self.reference.memory,
            self.reference.total_disk(),
        )
    }
}

impl PlacementAlgorithm for FfdSum {
    fn name(&self) -> &str {
        "FFDSum"
    }

    fn order_batch(&self, vms: &mut [VmSpec]) {
        vms.sort_by(|a, b| self.size(b).total_cmp(&self.size(a)));
    }

    fn choose(
        &mut self,
        cluster: &Cluster,
        vm: &VmSpec,
        exclude: &dyn Fn(PmId) -> bool,
    ) -> Option<PlacementDecision> {
        cluster
            .used_pms()
            .chain(cluster.unused_pms())
            .filter(|&pm| !exclude(pm))
            .find_map(|pm| {
                let host = cluster.pm(pm);
                if !host.has_aggregate_room(vm) {
                    return None;
                }
                host.first_feasible(vm)
                    .map(|assignment| PlacementDecision { pm, assignment })
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prvm_model::{catalog, place_batch, Cluster};

    #[test]
    fn batch_is_ordered_by_decreasing_size() {
        let ffd = FfdSum::new(catalog::pm_m3());
        let mut vms = vec![
            catalog::vm_m3_medium(),
            catalog::vm_m3_2xlarge(),
            catalog::vm_c3_large(),
            catalog::vm_m3_xlarge(),
        ];
        ffd.order_batch(&mut vms);
        let sizes: Vec<f64> = vms.iter().map(|v| ffd.size(v)).collect();
        assert!(sizes.windows(2).all(|w| w[0] >= w[1]), "{sizes:?}");
        assert_eq!(vms[0].name, "m3.2xlarge");
    }

    #[test]
    fn size_accounts_for_all_dimensions() {
        let ffd = FfdSum::new(catalog::pm_m3());
        let big = ffd.size(&catalog::vm_m3_2xlarge());
        let small = ffd.size(&catalog::vm_m3_medium());
        assert!(big > small);
        // m3.2xlarge: 4800/20800 + 30/64 + 160/1000
        let expect = 4800.0 / 20800.0 + 30.0 / 64.0 + 160.0 / 1000.0;
        assert!((big - expect).abs() < 1e-12, "{big}");
    }

    #[test]
    fn places_like_first_fit_after_ordering() {
        let mut ffd = FfdSum::new(catalog::pm_m3());
        let mut cluster = Cluster::homogeneous(catalog::pm_m3(), 4);
        let vms = vec![
            catalog::vm_m3_medium(),
            catalog::vm_m3_medium(),
            catalog::vm_m3_2xlarge(),
        ];
        place_batch(&mut ffd, &mut cluster, vms).unwrap();
        // Big VM first, mediums packed after it — all share PM 0
        // (memory: 30 + 2 x 3.75 = 37.5 of 64 GiB).
        assert_eq!(cluster.active_pm_count(), 1);
    }
}
